//! # mg-fault — deterministic fault injection
//!
//! The detector in this workspace is supposed to survive exactly the
//! conditions a clean simulator never exercises: monitors that miss RTS
//! commitments, collisions that corrupt observed offsets, and partially
//! observable periods. This crate provides a **seeded, fully deterministic
//! fault model** for exercising those conditions on demand:
//!
//! * [`FaultPlan`] — one plain-data plan covering four layers:
//!   * **phy/channel** ([`PhyFaults`]): per-frame observation loss, burst
//!     loss via a two-state Gilbert–Elliott chain ([`BurstLoss`]), and
//!     periodic monitor deafness windows ([`DeafWindows`]).
//!   * **mac/frame** ([`MacFaults`]): tagged-RTS commitment drops and
//!     bit-flips, so deterministic checks see garbage instead of clean
//!     violations.
//!   * **runner** ([`RunnerFaults`]): worker panics, simulated trial hangs
//!     and cache-entry corruption, keyed by task index.
//!   * **quorum** ([`QuorumFaults`]): adversarial (Byzantine) monitors for
//!     the collaborative-detection layer — vantages seeded into the
//!     [`MonitorRole::FalseAccuser`], [`MonitorRole::Mute`] or
//!     [`MonitorRole::Flip`] roles, so a gossip round tolerating `f` liars
//!     can be replayed byte-identically from the plan seed alone.
//! * [`ObsFaults`] — a per-monitor injector derived from the plan and the
//!   monitor's vantage node. Every draw comes from a private
//!   `xoshiro256**` stream seeded by `(plan.seed, vantage)`, so a monitor
//!   makes identical fault decisions whether it runs alone or fanned out
//!   beside others in the same world: equal seeds produce byte-identical
//!   journals, and fan-out equivalence survives injection.
//!
//! Faults apply at the **observer boundary** — what a monitor *perceives* —
//! never to the world itself, so the simulated medium evolves identically
//! with and without a plan attached. Deafness is a pure function of virtual
//! time (no RNG draw), which keeps monitors with different plans aligned on
//! the frames they both observe.
//!
//! Plans parse from a compact profile string (`MG_FAULT_PROFILE` /
//! `detect --faults`): comma-separated tokens where a bare word is a preset
//! (`off`, `light`, `heavy`) and `key=value` overrides one knob. See
//! [`FaultPlan::parse`].

#![warn(missing_docs)]

use mg_sim::rng::{Rng, SplitMix64, Xoshiro256};

/// Gilbert–Elliott two-state burst-loss chain.
///
/// The chain toggles between a *good* and a *bad* state once per observed
/// frame; each state carries its own loss probability. When present it
/// replaces the flat [`PhyFaults::loss`] probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstLoss {
    /// P(good → bad) per observed frame.
    pub p_enter_bad: f64,
    /// P(bad → good) per observed frame.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub good_loss: f64,
    /// Loss probability while in the bad state.
    pub bad_loss: f64,
}

/// Periodic monitor deafness windows on the virtual clock.
///
/// The monitor hears nothing during `[k·period + phase, k·period + phase +
/// deaf)` for every integer `k` — a pure function of virtual time, so it
/// consumes no randomness and never desynchronizes fault streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeafWindows {
    /// Window repetition period, virtual nanoseconds (0 disables).
    pub period_ns: u64,
    /// Deaf span at the start of each period, virtual nanoseconds.
    pub deaf_ns: u64,
    /// Phase offset of the first window, virtual nanoseconds.
    pub phase_ns: u64,
}

impl DeafWindows {
    /// True when the monitor is deaf at virtual time `t_ns`.
    pub fn is_deaf(&self, t_ns: u64) -> bool {
        self.period_ns > 0 && (t_ns.wrapping_add(self.phase_ns)) % self.period_ns < self.deaf_ns
    }
}

/// Channel-layer observation faults (what a monitor's radio fails to hear).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct PhyFaults {
    /// Flat per-frame loss probability (ignored when `burst` is set).
    pub loss: f64,
    /// Burst loss; replaces `loss` when present.
    pub burst: Option<BurstLoss>,
    /// Periodic deafness windows.
    pub deaf: Option<DeafWindows>,
}

impl PhyFaults {
    /// True when no channel-layer fault can ever fire.
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0
            && self.burst.is_none()
            && self.deaf.is_none_or(|d| d.period_ns == 0 || d.deaf_ns == 0)
    }
}

/// Frame-layer faults against the tagged node's RTS commitments.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct MacFaults {
    /// Probability a tagged RTS (that survived the channel) is still missed.
    pub rts_drop: f64,
    /// Probability a tagged RTS arrives with bit-flipped commitment fields.
    pub rts_corrupt: f64,
}

impl MacFaults {
    /// True when no frame-layer fault can ever fire.
    pub fn is_noop(&self) -> bool {
        self.rts_drop <= 0.0 && self.rts_corrupt <= 0.0
    }
}

/// Sweep-engine faults, keyed by flat task index.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RunnerFaults {
    /// Task indices whose run closure panics.
    pub panic_tasks: Vec<usize>,
    /// Task indices that stall for [`RunnerFaults::hang_ms`] before running.
    pub hang_tasks: Vec<usize>,
    /// Simulated hang duration, wall-clock milliseconds.
    pub hang_ms: u64,
    /// Task indices whose cache entry is truncated right after being stored.
    pub corrupt_cache_tasks: Vec<usize>,
    /// Per-task watchdog timeout, wall-clock milliseconds.
    pub timeout_ms: Option<u64>,
    /// Extra attempts granted to a task that times out.
    pub retries: u32,
}

impl RunnerFaults {
    /// True when task `i` must panic.
    pub fn panics(&self, i: usize) -> bool {
        self.panic_tasks.contains(&i)
    }

    /// True when task `i` must stall before running.
    pub fn hangs(&self, i: usize) -> bool {
        self.hang_tasks.contains(&i)
    }

    /// True when task `i`'s cache entry must be corrupted after the store.
    pub fn corrupts_cache(&self, i: usize) -> bool {
        self.corrupt_cache_tasks.contains(&i)
    }

    /// True when no runner-layer fault or policy override is configured.
    pub fn is_noop(&self) -> bool {
        self.panic_tasks.is_empty()
            && self.hang_tasks.is_empty()
            && self.corrupt_cache_tasks.is_empty()
            && self.timeout_ms.is_none()
    }
}

/// Adversarial-monitor (Byzantine) fault modes for the collaborative
/// detection layer.
///
/// The three fields are *role probabilities*: each vantage independently
/// draws one role from its private `(plan seed, vantage)` stream — see
/// [`FaultPlan::monitor_role`] — so the realized set of Byzantine monitors
/// is a pure function of the plan, replayable byte-for-byte. Quorum faults
/// corrupt what a monitor *says*, never what it *observes*, so they do not
/// count as observation faults and do not trigger the confirmation-harden
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct QuorumFaults {
    /// Probability a vantage is a [`MonitorRole::FalseAccuser`].
    pub lie: f64,
    /// Probability a vantage is a [`MonitorRole::Mute`].
    pub mute: f64,
    /// Probability a vantage is a [`MonitorRole::Flip`].
    pub flip: f64,
}

impl QuorumFaults {
    /// True when every vantage is guaranteed honest.
    pub fn is_noop(&self) -> bool {
        self.lie <= 0.0 && self.mute <= 0.0 && self.flip <= 0.0
    }
}

/// The behavioral role of one monitor in a gossip quorum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorRole {
    /// Accuses exactly when its local detector produces evidence.
    Honest,
    /// Sends real evidence *and* fabricates accusations against the tagged
    /// node on a seeded cadence, independent of any evidence.
    FalseAccuser,
    /// Never sends an accusation (suppresses true evidence); still listens
    /// and tallies honestly.
    Mute,
    /// Both Byzantine failure modes at once: fabricates like a
    /// [`MonitorRole::FalseAccuser`] and suppresses real evidence like a
    /// [`MonitorRole::Mute`].
    Flip,
}

impl MonitorRole {
    /// True for the roles that fabricate accusations without evidence.
    pub fn lies(self) -> bool {
        matches!(self, MonitorRole::FalseAccuser | MonitorRole::Flip)
    }

    /// True for the roles that suppress real evidence.
    pub fn suppresses(self) -> bool {
        matches!(self, MonitorRole::Mute | MonitorRole::Flip)
    }

    /// Stable lowercase tag (transcripts, tables).
    pub fn tag(self) -> &'static str {
        match self {
            MonitorRole::Honest => "honest",
            MonitorRole::FalseAccuser => "false-accuser",
            MonitorRole::Mute => "mute",
            MonitorRole::Flip => "flip",
        }
    }
}

/// A complete, seeded fault plan across all four layers.
///
/// `Debug` output is part of the cache-key contract: a plan rendered into a
/// sweep cache-key field invalidates cached results whenever any knob
/// changes.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Root seed for every per-monitor fault stream.
    pub seed: u64,
    /// Channel-layer observation faults.
    pub phy: PhyFaults,
    /// Frame-layer commitment faults.
    pub mac: MacFaults,
    /// Sweep-engine faults.
    pub runner: RunnerFaults,
    /// Adversarial-monitor (Byzantine) faults for the quorum layer.
    pub quorum: QuorumFaults,
}

/// Domain constant separating quorum-role draws from observation-fault
/// draws ("mg-qrole" in ASCII): the same `(seed, vantage)` pair must yield
/// independent streams for the two layers.
const QUORUM_ROLE_DOMAIN: u64 = 0x6D67_2D71_726F_6C65;

impl FaultPlan {
    /// True when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.phy.is_noop() && self.mac.is_noop() && self.runner.is_noop() && self.quorum.is_noop()
    }

    /// True when monitors would perceive faults (phy or mac layer active).
    /// Quorum faults deliberately do not count: a Byzantine monitor
    /// *observes* faithfully and lies afterwards, so the confirmation-harden
    /// path must not engage for them.
    pub fn has_observation_faults(&self) -> bool {
        !self.phy.is_noop() || !self.mac.is_noop()
    }

    /// The Byzantine role of the monitor at `vantage` under this plan: one
    /// uniform draw from a private stream seeded by `(plan seed, vantage)`
    /// compared against the cumulative [`QuorumFaults`] probabilities.
    /// Equal plans assign equal roles, whatever order vantages are queried
    /// in.
    pub fn monitor_role(&self, vantage: u64) -> MonitorRole {
        if self.quorum.is_noop() {
            return MonitorRole::Honest;
        }
        let mut rng = self.quorum_rng(vantage);
        let u = rng.uniform01();
        let q = self.quorum;
        if u < q.lie {
            MonitorRole::FalseAccuser
        } else if u < q.lie + q.mute {
            MonitorRole::Mute
        } else if u < q.lie + q.mute + q.flip {
            MonitorRole::Flip
        } else {
            MonitorRole::Honest
        }
    }

    /// The private quorum-layer RNG stream for `vantage` (role draw plus any
    /// per-member fabrication cadence). Distinct from the [`ObsFaults`]
    /// stream of the same vantage by domain separation.
    pub fn quorum_rng(&self, vantage: u64) -> Xoshiro256 {
        let seed = SplitMix64::mix(
            SplitMix64::mix(self.seed ^ QUORUM_ROLE_DOMAIN)
                ^ vantage.wrapping_mul(0xA24B_AED4_963E_E407),
        );
        Xoshiro256::new(seed)
    }

    /// Returns `self` with the root seed replaced.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// The per-monitor injector for a monitor at `vantage`, or `None` when
    /// the plan carries no observation faults.
    pub fn observer(&self, vantage: u64) -> Option<ObsFaults> {
        if !self.has_observation_faults() {
            return None;
        }
        Some(ObsFaults::new(self, vantage))
    }

    /// Parses a fault-profile string.
    ///
    /// Comma-separated tokens, applied left to right. A bare word selects a
    /// preset (`off`, `light`, `heavy`); `key=value` overrides one knob:
    ///
    /// | key | value | meaning |
    /// |-----|-------|---------|
    /// | `seed` | u64 | root stream seed |
    /// | `loss` | probability | flat per-frame observation loss |
    /// | `burst` | `pe:px:gl:bl` | Gilbert–Elliott enter/exit/good-loss/bad-loss |
    /// | `deaf` | `period:span[:phase]` (ms) | periodic deafness windows |
    /// | `drop` | probability | tagged-RTS drop |
    /// | `corrupt` | probability | tagged-RTS commitment bit-flips |
    /// | `panic` | `i[:j...]` | panicking task indices |
    /// | `hang` | `i[:j...]` | hanging task indices |
    /// | `hang-ms` | u64 | simulated hang duration |
    /// | `corrupt-cache` | `i[:j...]` | tasks whose cache entry is truncated |
    /// | `timeout-ms` | u64 | per-task watchdog timeout |
    /// | `retries` | u32 | retry budget for timed-out tasks |
    /// | `lie` | probability | P(vantage is a false accuser) |
    /// | `mute` | probability | P(vantage suppresses accusations) |
    /// | `flip` | probability | P(vantage both lies and suppresses) |
    ///
    /// `FaultPlan::parse("light,seed=7,drop=0.2")` starts from the `light`
    /// preset and overrides two knobs. Malformed tokens are an error naming
    /// the offending token and the expected shape.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(',') {
            let token = raw.trim();
            if token.is_empty() {
                continue;
            }
            match token.split_once('=') {
                None => plan.apply_preset(token)?,
                Some((key, value)) => plan.apply_knob(key.trim(), value.trim(), token)?,
            }
        }
        Ok(plan)
    }

    fn apply_preset(&mut self, name: &str) -> Result<(), String> {
        match name {
            "off" | "none" => {
                let seed = self.seed;
                *self = FaultPlan { seed, ..FaultPlan::default() };
            }
            "light" => {
                self.phy.loss = 0.05;
                self.mac.rts_drop = 0.05;
            }
            "heavy" => {
                self.phy.loss = 0.10;
                self.phy.burst = Some(BurstLoss {
                    p_enter_bad: 0.05,
                    p_exit_bad: 0.40,
                    good_loss: 0.02,
                    bad_loss: 0.50,
                });
                self.phy.deaf = Some(DeafWindows {
                    period_ns: 250_000_000,
                    deaf_ns: 25_000_000,
                    phase_ns: 0,
                });
                self.mac.rts_drop = 0.15;
                self.mac.rts_corrupt = 0.05;
            }
            other => {
                return Err(format!(
                    "unknown fault preset {other:?}: expected \"off\", \"light\" or \"heavy\""
                ))
            }
        }
        Ok(())
    }

    fn apply_knob(&mut self, key: &str, value: &str, token: &str) -> Result<(), String> {
        match key {
            "seed" => self.seed = parse_u64(value, token)?,
            "loss" => self.phy.loss = parse_prob(value, token)?,
            "drop" => self.mac.rts_drop = parse_prob(value, token)?,
            "corrupt" => self.mac.rts_corrupt = parse_prob(value, token)?,
            "burst" => {
                let parts = parse_f64_list(value, token)?;
                if parts.len() != 4 {
                    return Err(format!(
                        "invalid fault token {token:?}: expected burst=pe:px:gl:bl (four probabilities)"
                    ));
                }
                for &p in &parts {
                    check_prob(p, token)?;
                }
                self.phy.burst = Some(BurstLoss {
                    p_enter_bad: parts[0],
                    p_exit_bad: parts[1],
                    good_loss: parts[2],
                    bad_loss: parts[3],
                });
            }
            "deaf" => {
                let parts = parse_u64_list(value, token)?;
                if parts.len() != 2 && parts.len() != 3 {
                    return Err(format!(
                        "invalid fault token {token:?}: expected deaf=period:span[:phase] in milliseconds"
                    ));
                }
                self.phy.deaf = Some(DeafWindows {
                    period_ns: parts[0] * 1_000_000,
                    deaf_ns: parts[1] * 1_000_000,
                    phase_ns: parts.get(2).copied().unwrap_or(0) * 1_000_000,
                });
            }
            "panic" => self.runner.panic_tasks = parse_usize_list(value, token)?,
            "hang" => self.runner.hang_tasks = parse_usize_list(value, token)?,
            "hang-ms" => self.runner.hang_ms = parse_u64(value, token)?,
            "corrupt-cache" => self.runner.corrupt_cache_tasks = parse_usize_list(value, token)?,
            "timeout-ms" => self.runner.timeout_ms = Some(parse_u64(value, token)?),
            "retries" => self.runner.retries = parse_u64(value, token)? as u32,
            "lie" => self.quorum.lie = parse_prob(value, token)?,
            "mute" => self.quorum.mute = parse_prob(value, token)?,
            "flip" => self.quorum.flip = parse_prob(value, token)?,
            other => {
                return Err(format!(
                    "unknown fault knob {other:?} in token {token:?}: expected one of \
                     seed/loss/burst/deaf/drop/corrupt/panic/hang/hang-ms/corrupt-cache/timeout-ms/\
                     retries/lie/mute/flip"
                ))
            }
        }
        Ok(())
    }
}

fn parse_u64(value: &str, token: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("invalid fault token {token:?}: expected an unsigned integer"))
}

fn parse_prob(value: &str, token: &str) -> Result<f64, String> {
    let p = value
        .parse::<f64>()
        .map_err(|_| format!("invalid fault token {token:?}: expected a probability in [0, 1]"))?;
    check_prob(p, token)?;
    Ok(p)
}

fn check_prob(p: f64, token: &str) -> Result<(), String> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(format!("invalid fault token {token:?}: probability {p} is outside [0, 1]"))
    }
}

fn parse_f64_list(value: &str, token: &str) -> Result<Vec<f64>, String> {
    value
        .split(':')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("invalid fault token {token:?}: {s:?} is not a number"))
        })
        .collect()
}

fn parse_u64_list(value: &str, token: &str) -> Result<Vec<u64>, String> {
    value
        .split(':')
        .map(|s| {
            s.trim()
                .parse::<u64>()
                .map_err(|_| format!("invalid fault token {token:?}: {s:?} is not an unsigned integer"))
        })
        .collect()
}

fn parse_usize_list(value: &str, token: &str) -> Result<Vec<usize>, String> {
    parse_u64_list(value, token).map(|v| v.into_iter().map(|n| n as usize).collect())
}

/// Which commitment bits a corrupted tagged RTS arrives with flipped.
///
/// Exactly one of the three fields is nonzero per spec: the 13-bit sequence
/// offset, the 3-bit attempt counter, or one byte of the MD5 commitment.
/// Carrying raw XOR masks keeps this crate ignorant of frame layouts — the
/// MAC layer applies the mask to its own wire fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CorruptSpec {
    /// XOR mask over the 13-bit wire sequence offset.
    pub seq_xor: u16,
    /// XOR mask over the 3-bit attempt counter.
    pub attempt_xor: u8,
    /// Index of the MD5 commitment byte to flip.
    pub md_index: usize,
    /// XOR mask over that commitment byte.
    pub md_mask: u8,
}

impl CorruptSpec {
    /// Total number of bits this spec flips.
    pub fn bits_flipped(&self) -> u32 {
        self.seq_xor.count_ones() + self.attempt_xor.count_ones() + self.md_mask.count_ones()
    }
}

/// What happens to one observed frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFate {
    /// The monitor perceives the frame unchanged.
    Deliver,
    /// The monitor never hears the frame; the tag names the fault that ate it.
    Drop(&'static str),
    /// A tagged RTS arrives with the given commitment bits flipped.
    Corrupt(CorruptSpec),
}

/// A per-monitor fault injector: one private RNG stream per `(plan seed,
/// vantage)` pair, consulted once per frame the monitor would decode.
///
/// Decisions depend only on the plan, the vantage and the sequence of
/// observed frames — never on wall-clock time or other monitors — so a
/// monitor's fate sequence is identical across solo and fanned-out runs of
/// the same world.
#[derive(Clone, Debug)]
pub struct ObsFaults {
    phy: PhyFaults,
    mac: MacFaults,
    rng: Xoshiro256,
    in_bad: bool,
}

impl ObsFaults {
    /// An injector for a monitor at `vantage` under `plan`.
    pub fn new(plan: &FaultPlan, vantage: u64) -> ObsFaults {
        let seed = SplitMix64::mix(
            SplitMix64::mix(plan.seed ^ 0x6D67_2D66_6175_6C74) // "mg-fault"
                ^ vantage.wrapping_mul(0xA24B_AED4_963E_E407),
        );
        ObsFaults {
            phy: plan.phy,
            mac: plan.mac,
            rng: Xoshiro256::new(seed),
            in_bad: false,
        }
    }

    /// Decides the fate of one observed frame at virtual time `t_ns`.
    ///
    /// `is_tagged_rts` is true when the frame is an RTS from the node this
    /// monitor watches — only those are eligible for the mac-layer drop and
    /// corruption faults.
    pub fn frame_fate(&mut self, t_ns: u64, is_tagged_rts: bool) -> FrameFate {
        if let Some(d) = self.phy.deaf {
            if d.is_deaf(t_ns) {
                return FrameFate::Drop("deaf");
            }
        }
        let loss = match self.phy.burst {
            Some(b) => {
                self.in_bad = if self.in_bad {
                    !self.rng.bernoulli(b.p_exit_bad)
                } else {
                    self.rng.bernoulli(b.p_enter_bad)
                };
                if self.in_bad {
                    b.bad_loss
                } else {
                    b.good_loss
                }
            }
            None => self.phy.loss,
        };
        if loss > 0.0 && self.rng.bernoulli(loss) {
            return FrameFate::Drop(if self.in_bad { "burst-loss" } else { "loss" });
        }
        if is_tagged_rts {
            if self.mac.rts_drop > 0.0 && self.rng.bernoulli(self.mac.rts_drop) {
                return FrameFate::Drop("rts-drop");
            }
            if self.mac.rts_corrupt > 0.0 && self.rng.bernoulli(self.mac.rts_corrupt) {
                return FrameFate::Corrupt(self.draw_corruption());
            }
        }
        FrameFate::Deliver
    }

    fn draw_corruption(&mut self) -> CorruptSpec {
        match self.rng.below(3) {
            0 => CorruptSpec {
                seq_xor: 1 + self.rng.below(0x1FFF) as u16, // nonzero, 13-bit
                ..CorruptSpec::default()
            },
            1 => CorruptSpec {
                attempt_xor: 1 + self.rng.below(7) as u8, // nonzero, 3-bit
                ..CorruptSpec::default()
            },
            _ => CorruptSpec {
                md_index: self.rng.below(16) as usize,
                md_mask: 1 << self.rng.below(8),
                ..CorruptSpec::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_has_no_observer() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(!plan.has_observation_faults());
        assert!(plan.observer(3).is_none());
    }

    #[test]
    fn presets_parse_and_compose_with_overrides() {
        let light = FaultPlan::parse("light").unwrap();
        assert_eq!(light.phy.loss, 0.05);
        assert_eq!(light.mac.rts_drop, 0.05);
        assert!(light.has_observation_faults());

        let heavy = FaultPlan::parse("heavy,seed=9,drop=0.2").unwrap();
        assert_eq!(heavy.seed, 9);
        assert_eq!(heavy.mac.rts_drop, 0.2);
        assert!(heavy.phy.burst.is_some());
        assert!(heavy.phy.deaf.is_some());

        // `off` resets the faults but keeps the seed.
        let off = FaultPlan::parse("seed=5,heavy,off").unwrap();
        assert_eq!(off.seed, 5);
        assert!(off.is_noop());
    }

    #[test]
    fn knob_grammar_covers_all_three_layers() {
        let plan = FaultPlan::parse(
            "loss=0.1,burst=0.05:0.4:0.02:0.5,deaf=200:50:10,drop=0.15,corrupt=0.01,\
             panic=3:7,hang=5,hang-ms=40,corrupt-cache=2,timeout-ms=100,retries=1",
        )
        .unwrap();
        assert_eq!(plan.phy.loss, 0.1);
        let b = plan.phy.burst.unwrap();
        assert_eq!((b.p_enter_bad, b.p_exit_bad, b.good_loss, b.bad_loss), (0.05, 0.4, 0.02, 0.5));
        let d = plan.phy.deaf.unwrap();
        assert_eq!((d.period_ns, d.deaf_ns, d.phase_ns), (200_000_000, 50_000_000, 10_000_000));
        assert_eq!(plan.mac.rts_corrupt, 0.01);
        assert!(plan.runner.panics(3) && plan.runner.panics(7) && !plan.runner.panics(4));
        assert!(plan.runner.hangs(5));
        assert_eq!(plan.runner.hang_ms, 40);
        assert!(plan.runner.corrupts_cache(2));
        assert_eq!(plan.runner.timeout_ms, Some(100));
        assert_eq!(plan.runner.retries, 1);
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_offending_token() {
        for bad in [
            "bogus",
            "loss=1.5",
            "loss=abc",
            "burst=0.1:0.2",
            "deaf=100",
            "panic=x",
            "timeout-ms=-1",
            "volume=11",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                err.contains(bad.split(',').next().unwrap().split('=').next().unwrap())
                    || err.contains(bad),
                "error for {bad:?} should name the token, got: {err}"
            );
        }
    }

    #[test]
    fn equal_seed_and_vantage_replay_identical_fates() {
        let plan = FaultPlan::parse("heavy,seed=42").unwrap();
        let mut a = ObsFaults::new(&plan, 7);
        let mut b = ObsFaults::new(&plan, 7);
        for i in 0..500u64 {
            let t = i * 1_700_000;
            assert_eq!(a.frame_fate(t, i % 3 == 0), b.frame_fate(t, i % 3 == 0));
        }
    }

    #[test]
    fn different_vantages_get_independent_streams() {
        let plan = FaultPlan::parse("loss=0.5,seed=1").unwrap();
        let mut a = ObsFaults::new(&plan, 1);
        let mut b = ObsFaults::new(&plan, 2);
        let fates_a: Vec<_> = (0..64).map(|i| a.frame_fate(i, false)).collect();
        let fates_b: Vec<_> = (0..64).map(|i| b.frame_fate(i, false)).collect();
        assert_ne!(fates_a, fates_b, "distinct vantages must not share a stream");
    }

    #[test]
    fn deafness_is_a_pure_function_of_virtual_time() {
        let d = DeafWindows { period_ns: 100, deaf_ns: 25, phase_ns: 0 };
        assert!(d.is_deaf(0));
        assert!(d.is_deaf(24));
        assert!(!d.is_deaf(25));
        assert!(!d.is_deaf(99));
        assert!(d.is_deaf(100));
        let phased = DeafWindows { period_ns: 100, deaf_ns: 25, phase_ns: 10 };
        assert!(phased.is_deaf(90)); // 90 + 10 = 100 ≡ 0 (mod 100)
        assert!(!phased.is_deaf(20));
        // Deaf drops consume no randomness: an injector that sat through a
        // deaf window makes the same later decisions as one that never saw
        // those frames at all.
        let plan = FaultPlan::parse("deaf=2:1,loss=0.5,seed=3").unwrap();
        let mut sat_through = ObsFaults::new(&plan, 0);
        for t in (0..1_000_000).step_by(10_000) {
            assert_eq!(sat_through.frame_fate(t, false), FrameFate::Drop("deaf"));
        }
        let mut fresh = ObsFaults::new(&plan, 0);
        for i in 0..256u64 {
            let awake = 1_000_000 + i * 7_000; // inside the second half of each period
            assert_eq!(sat_through.frame_fate(awake, false), fresh.frame_fate(awake, false));
        }
    }

    #[test]
    fn burst_chain_visits_both_states() {
        let plan = FaultPlan::parse("burst=0.3:0.3:0.0:1.0,seed=11").unwrap();
        let mut obs = ObsFaults::new(&plan, 0);
        let fates: Vec<_> = (0..400).map(|i| obs.frame_fate(i, false)).collect();
        assert!(fates.contains(&FrameFate::Drop("burst-loss")), "bad state must drop");
        assert!(fates.contains(&FrameFate::Deliver), "good state must deliver");
    }

    #[test]
    fn quorum_knobs_parse_and_do_not_count_as_observation_faults() {
        let plan = FaultPlan::parse("seed=4,lie=0.3,mute=0.1,flip=0.05").unwrap();
        assert_eq!(plan.quorum, QuorumFaults { lie: 0.3, mute: 0.1, flip: 0.05 });
        assert!(!plan.is_noop(), "quorum faults make the plan non-noop");
        assert!(
            !plan.has_observation_faults(),
            "Byzantine monitors observe faithfully — no confirmation harden"
        );
        assert!(plan.observer(3).is_none());
        // `off` resets the quorum layer along with everything else.
        assert!(FaultPlan::parse("lie=0.5,off").unwrap().is_noop());
        // Probabilities outside [0, 1] are rejected like any other knob.
        assert!(FaultPlan::parse("lie=1.5").is_err());
    }

    #[test]
    fn monitor_roles_are_seeded_per_vantage_and_cover_all_roles() {
        let plan = FaultPlan::parse("seed=7,lie=0.25,mute=0.25,flip=0.25").unwrap();
        let roles: Vec<MonitorRole> = (0..64).map(|v| plan.monitor_role(v)).collect();
        let again: Vec<MonitorRole> = (0..64).map(|v| plan.monitor_role(v)).collect();
        assert_eq!(roles, again, "equal plans must assign equal roles");
        for want in [
            MonitorRole::Honest,
            MonitorRole::FalseAccuser,
            MonitorRole::Mute,
            MonitorRole::Flip,
        ] {
            assert!(roles.contains(&want), "role {want:?} never drawn in 64 vantages");
        }
        // A different seed reshuffles the assignment.
        let other = FaultPlan::parse("seed=8,lie=0.25,mute=0.25,flip=0.25").unwrap();
        let shuffled: Vec<MonitorRole> = (0..64).map(|v| other.monitor_role(v)).collect();
        assert_ne!(roles, shuffled);
        // A clean plan is all-honest without consuming any randomness.
        let clean = FaultPlan::default();
        assert!((0..16).all(|v| clean.monitor_role(v) == MonitorRole::Honest));
    }

    #[test]
    fn role_semantics_partition_lying_and_suppressing() {
        assert!(!MonitorRole::Honest.lies() && !MonitorRole::Honest.suppresses());
        assert!(MonitorRole::FalseAccuser.lies() && !MonitorRole::FalseAccuser.suppresses());
        assert!(!MonitorRole::Mute.lies() && MonitorRole::Mute.suppresses());
        assert!(MonitorRole::Flip.lies() && MonitorRole::Flip.suppresses());
        assert_eq!(MonitorRole::FalseAccuser.tag(), "false-accuser");
    }

    #[test]
    fn corruption_specs_flip_exactly_one_commitment_field() {
        let plan = FaultPlan::parse("corrupt=1.0,seed=2").unwrap();
        let mut obs = ObsFaults::new(&plan, 0);
        let mut kinds = [false; 3];
        for i in 0..200 {
            match obs.frame_fate(i, true) {
                FrameFate::Corrupt(spec) => {
                    assert!(spec.bits_flipped() > 0);
                    let fields = [spec.seq_xor != 0, spec.attempt_xor != 0, spec.md_mask != 0];
                    assert_eq!(fields.iter().filter(|&&f| f).count(), 1, "{spec:?}");
                    assert!(spec.seq_xor <= 0x1FFF, "13-bit field");
                    assert!(spec.attempt_xor <= 7, "3-bit field");
                    assert!(spec.md_index < 16);
                    for (slot, hit) in kinds.iter_mut().zip(fields) {
                        *slot |= hit;
                    }
                }
                other => panic!("corrupt=1.0 must corrupt every tagged RTS, got {other:?}"),
            }
        }
        assert_eq!(kinds, [true; 3], "all three corruption kinds must occur");
    }
}
