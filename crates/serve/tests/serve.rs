//! Integration tests for the serving layer: channel semantics, wire
//! framing, and the load-bearing invariant — a daemon-served stream's
//! report is byte-identical to an offline `detect --replay` of the same
//! journal, in-process and over a real TCP socket.

use mg_detect::{
    render_report, replay_pool, template_from_meta, JournalFormat, JournalReader, ObsJournal,
    ObsMeta, ObsRecorder, ScenarioBuilder, WorldProbe,
};
use mg_dcf::BackoffPolicy;
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_obs::Obs;
use mg_serve::{
    mpmc, serve_connection, wire, Daemon, Policy, ServeConfig,
};
use mg_sim::SimTime;
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------- mpmc --

#[test]
fn mpmc_send_blocks_until_a_recv_frees_space() {
    let (tx, rx) = mpmc::bounded::<u32>(1);
    tx.send(1).unwrap();
    let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
    // The sender is parked on the full queue; one recv unblocks it.
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert_eq!(rx.recv(), Some(1));
    t.join().unwrap().unwrap();
    assert_eq!(rx.recv(), Some(2));
}

#[test]
fn mpmc_try_send_sheds_on_full_and_fails_on_closed() {
    let (tx, rx) = mpmc::bounded::<u32>(2);
    tx.try_send(1).unwrap();
    tx.try_send(2).unwrap();
    assert_eq!(tx.try_send(3), Err(mpmc::TrySendError::Full(3)));
    rx.close();
    assert_eq!(tx.try_send(4), Err(mpmc::TrySendError::Closed(4)));
    // Already-queued values stay readable after the close.
    assert_eq!(rx.recv(), Some(1));
    assert_eq!(rx.recv(), Some(2));
    assert_eq!(rx.recv(), None);
}

#[test]
fn mpmc_recv_drains_then_reports_disconnection() {
    let (tx, rx) = mpmc::bounded::<u32>(8);
    tx.send(7).unwrap();
    tx.send(8).unwrap();
    drop(tx);
    assert_eq!(rx.recv(), Some(7));
    assert_eq!(rx.recv(), Some(8));
    assert_eq!(rx.recv(), None);
}

#[test]
fn mpmc_multi_consumer_partitions_the_stream() {
    let (tx, rx) = mpmc::bounded::<u64>(16);
    let rx2 = rx.clone();
    let sums: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let consumers: Vec<_> = [rx, rx2]
        .into_iter()
        .map(|r| {
            let sums = sums.clone();
            std::thread::spawn(move || {
                while let Some(v) = r.recv() {
                    *sums.lock().unwrap() += v;
                }
            })
        })
        .collect();
    for v in 1..=100u64 {
        tx.send(v).unwrap();
    }
    drop(tx);
    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(*sums.lock().unwrap(), 5050);
}

// ---------------------------------------------------------------- wire --

#[test]
fn wire_frames_roundtrip_and_terminate() {
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, b"alpha").unwrap();
    wire::write_frame(&mut buf, b"beta").unwrap();
    wire::write_end(&mut buf).unwrap();
    let mut r = &buf[..];
    assert_eq!(wire::read_frame(&mut r).unwrap().as_deref(), Some(&b"alpha"[..]));
    assert_eq!(wire::read_frame(&mut r).unwrap().as_deref(), Some(&b"beta"[..]));
    assert_eq!(wire::read_frame(&mut r).unwrap(), None);
}

#[test]
fn wire_rejects_oversized_and_truncated_frames() {
    // A hostile length prefix must not allocate; it is InvalidData.
    let mut big = ((wire::MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
    big.extend_from_slice(b"x");
    let err = wire::read_frame(&mut &big[..]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // A frame cut short mid-payload is UnexpectedEof.
    let mut cut = Vec::new();
    wire::write_frame(&mut cut, b"payload").unwrap();
    cut.truncate(cut.len() - 3);
    let err = wire::read_frame(&mut &cut[..]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn wire_send_journal_chunks_carry_every_event() {
    let journal = record(11, 60);
    let reader = JournalReader::from_bytes(journal.encode(JournalFormat::Binary)).unwrap();
    let mut buf = Vec::new();
    let sent = wire::send_journal(&mut buf, &reader, 100).unwrap();
    assert_eq!(sent, journal.len() as u64);
    // Decode every chunk back; the concatenation must equal the original.
    let mut r = &buf[..];
    let mut events: Vec<Obs> = Vec::new();
    while let Some(payload) = wire::read_frame(&mut r).unwrap() {
        let chunk = JournalReader::from_bytes(payload).unwrap();
        assert_eq!(chunk.meta(), journal.meta());
        for ev in chunk.events() {
            events.push(ev.unwrap());
        }
    }
    assert_eq!(events.len(), journal.len());
    assert_eq!(&events[..], journal.events());
}

// -------------------------------------------------------------- daemon --

/// Records one small saturated grid world, exactly as `detect --record`
/// would (the journal's meta carries the replay-sufficient params).
fn record(seed: u64, pm: u8) -> ObsJournal {
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 2,
        rate_pps: 2.0,
        ..ScenarioConfig::grid_paper(seed)
    });
    let (s, r) = scenario.tagged_pair();
    let mut b = ScenarioBuilder::new(scenario);
    let a = b.attacker(s);
    b.source(SourceCfg::saturated(s, r));
    let meta = ObsMeta {
        tagged: s,
        vantages: vec![r],
        pair_distance: 240.0,
        seed,
        params: vec![("kind".into(), "grid".into()), ("pm".into(), pm.to_string())],
    };
    let mut world = b.probe(ObsRecorder::new(meta)).build();
    world.set_policy(a.id(), BackoffPolicy::Scaled { pm });
    world.run_until(SimTime::from_secs(2));
    world.probe().journal().clone()
}

/// The offline reference: what `detect --replay` prints for this journal.
fn offline_report(journal: &ObsJournal) -> String {
    let meta = journal.meta();
    let pool = replay_pool(journal, template_from_meta(meta));
    render_report(meta.tagged, 50, false, &pool.diagnosis())
}

#[test]
fn daemon_stream_report_is_byte_identical_to_offline_replay() {
    let journal = record(5, 60);
    assert!(!journal.is_empty());
    let reference = offline_report(&journal);

    let daemon = Daemon::start(ServeConfig::default(), None);
    let mut stream = daemon.open(journal.meta().clone());
    for o in journal.events() {
        stream.push(o.clone());
    }
    let report = stream.close().expect("daemon alive");
    assert_eq!(report.report, reference);
    assert_eq!(report.events, journal.len() as u64);
    assert_eq!(report.dropped, 0);

    let stats = daemon.shutdown();
    assert_eq!(stats.streams, 1);
    assert_eq!(stats.events, journal.len() as u64);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.abandoned, 0);
}

#[test]
fn daemon_serves_interleaved_streams_independently() {
    // A misbehaving and a clean world, interleaved event by event through
    // the same daemon: each session must land on its own offline verdict.
    let hot = record(5, 80);
    let clean = record(6, 0);
    let daemon = Daemon::start(
        ServeConfig {
            workers: 2,
            batch: 32,
            ..ServeConfig::default()
        },
        None,
    );
    let mut s1 = daemon.open(hot.meta().clone());
    let mut s2 = daemon.open(clean.meta().clone());
    let (e1, e2) = (hot.events(), clean.events());
    for i in 0..e1.len().max(e2.len()) {
        if let Some(o) = e1.get(i) {
            s1.push(o.clone());
        }
        if let Some(o) = e2.get(i) {
            s2.push(o.clone());
        }
    }
    let r1 = s1.close().unwrap();
    let r2 = s2.close().unwrap();
    assert_eq!(r1.report, offline_report(&hot));
    assert_eq!(r2.report, offline_report(&clean));
    assert!(r1.flagged, "PM=80 over 2s must be flagged");
    daemon.shutdown();
}

#[test]
fn shed_policy_conserves_events_and_accounts_drops() {
    let journal = record(7, 50);
    let daemon = Daemon::start(
        ServeConfig {
            workers: 1,
            queue_cap: 1,
            batch: 1,
            policy: Policy::Shed,
            ..ServeConfig::default()
        },
        None,
    );
    let mut stream = daemon.open(journal.meta().clone());
    for o in journal.events() {
        stream.push(o.clone());
    }
    let report = stream.close().expect("daemon alive");
    // Shedding may or may not bite depending on scheduling, but the
    // accounting must always conserve: accepted + dropped = pushed.
    let stats = daemon.shutdown();
    assert_eq!(report.events, journal.len() as u64);
    assert_eq!(stats.events + report.dropped, journal.len() as u64);
    assert_eq!(stats.dropped, report.dropped);
}

/// A `Write` that appends into shared memory, for capturing the JSONL
/// delta feed.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn delta_subscriber_receives_stream_tagged_jsonl() {
    let journal = record(5, 80);
    let sink = SharedBuf::default();
    let daemon = Daemon::start(
        ServeConfig {
            deltas: true,
            ..ServeConfig::default()
        },
        Some(Box::new(sink.clone())),
    );
    let mut stream = daemon.open(journal.meta().clone());
    let id = stream.stream_id();
    for o in journal.events() {
        stream.push(o.clone());
    }
    let report = stream.close().unwrap();
    let stats = daemon.shutdown();

    let bytes = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, stats.deltas);
    assert!(stats.deltas > 0, "a flagged run must emit deltas");
    let prefix = format!("{{\"stream\":{id},\"t\":");
    for l in &lines {
        assert!(l.starts_with(&prefix), "bad delta line: {l}");
    }
    // The verdict flip must be present exactly when the run is flagged.
    let verdicts: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"verdict\""))
        .collect();
    assert_eq!(report.flagged, verdicts.len() % 2 == 1);
}

// -------------------------------------------------------------- socket --

#[test]
fn socket_stream_report_is_byte_identical_to_offline_replay() {
    let journal = record(9, 70);
    let reference = offline_report(&journal);
    let daemon = Arc::new(Daemon::start(ServeConfig::default(), None));

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let daemon = daemon.clone();
        std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            serve_connection(&mut sock, &daemon).unwrap()
        })
    };

    let reader = JournalReader::from_bytes(journal.encode(JournalFormat::Binary)).unwrap();
    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    let sent = wire::send_journal(&mut sock, &reader, 500).unwrap();
    assert_eq!(sent, journal.len() as u64);
    let mut response = String::new();
    sock.read_to_string(&mut response).unwrap();

    let served = server.join().unwrap().expect("one stream served");
    assert_eq!(response, reference, "wire response != offline replay");
    assert_eq!(served.report, reference);
    assert_eq!(served.events, journal.len() as u64);

    let daemon = Arc::try_unwrap(daemon).ok().expect("server joined");
    let stats = daemon.shutdown();
    assert_eq!(stats.streams, 1);
    assert_eq!(stats.abandoned, 0);
}

#[test]
fn cross_stream_quorum_convicts_on_k_flagged_streams() {
    // Three streams against the same tagged node: two flagged (distinct
    // seeds, PM hot), one clean. k = 2 convicts; k = 3 does not.
    let hot_a = record(5, 80);
    let hot_b = record(8, 80);
    let clean = record(6, 0);
    let run = |k: usize| {
        let daemon = Daemon::start(
            ServeConfig { quorum: Some(k), ..ServeConfig::default() },
            None,
        );
        let mut flagged = 0;
        for journal in [&hot_a, &hot_b, &clean] {
            let mut s = daemon.open(journal.meta().clone());
            for o in journal.events() {
                s.push(o.clone());
            }
            if s.close().unwrap().flagged {
                flagged += 1;
            }
        }
        let report = daemon.quorum_report().expect("quorum mode is on");
        daemon.shutdown();
        (flagged, report)
    };
    let (flagged, at2) = run(2);
    assert_eq!(flagged, 2, "two hot streams flag, the clean one does not");
    assert!(at2.contains("2 stream(s) flagged"), "{at2}");
    assert!(at2.contains("-> CONVICTED"), "{at2}");
    let (_, at3) = run(3);
    assert!(at3.contains("below quorum, cleared"), "{at3}");

    // Without quorum mode there is no report at all.
    let plain = Daemon::start(ServeConfig::default(), None);
    assert!(plain.quorum_report().is_none());
    assert!(plain.config().workers >= 1, "parallelism default resolves to >= 1");
    plain.shutdown();
}
