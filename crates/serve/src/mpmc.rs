//! A bounded multi-producer multi-consumer channel with explicit
//! back-pressure — the only queue the serving layer uses.
//!
//! `std::sync::mpsc` is single-consumer and its `SyncSender` cannot be
//! polled for fullness without consuming the value on failure; the daemon
//! needs both worker *pools* draining one queue and a caller-visible
//! **block vs shed** decision at the producer. The workspace is hermetic
//! (no crossbeam), so the channel is built directly on
//! [`Mutex`]`<`[`VecDeque`]`>` plus two [`Condvar`]s — the textbook
//! construction, sized in the low hundreds of lines and fully owned by this
//! crate.
//!
//! Semantics:
//!
//! * [`Sender::send`] **blocks** while the queue is at capacity
//!   (back-pressure propagates to the producer — the *Block* policy);
//! * [`Sender::try_send`] never blocks and hands the value back in
//!   [`TrySendError::Full`] so the producer can shed it and account the
//!   drop (the *Shed* policy);
//! * [`Receiver::recv`] blocks until a value or disconnection: once every
//!   sender is gone **and** the queue is empty it returns `None`, so a
//!   worker naturally drains the queue before exiting;
//! * [`Receiver::close`] poisons the channel from the consumer side:
//!   producers get [`SendError`] immediately, pending values stay readable.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// The channel refused a value because every receiver closed the channel.
/// The unsent value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// [`Sender::try_send`] failure: the value is handed back either way.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity right now — shed or retry.
    Full(T),
    /// The channel is closed; no retry can ever succeed.
    Closed(T),
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    cap: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Producer half of a [`bounded`] channel. Clone freely.
pub struct Sender<T>(Arc<Shared<T>>);

/// Consumer half of a [`bounded`] channel. Clone freely.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Creates a bounded channel holding at most `cap` values (`cap` ≥ 1 is
/// enforced by clamping).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        cap: cap.max(1),
        state: Mutex::new(State {
            queue: VecDeque::new(),
            closed: false,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(shared.clone()), Receiver(shared))
}

impl<T> Sender<T> {
    /// Blocking send: waits for queue space (the *Block* back-pressure
    /// policy). Fails only when the channel is closed or every receiver is
    /// gone, handing the value back.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.state.lock().expect("mpmc lock");
        loop {
            if st.closed || st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < self.0.cap {
                st.queue.push_back(value);
                drop(st);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            st = self.0.not_full.wait(st).expect("mpmc lock");
        }
    }

    /// Non-blocking send: a full queue returns [`TrySendError::Full`] with
    /// the value, letting the producer shed it (and account the drop).
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.0.state.lock().expect("mpmc lock");
        if st.closed || st.receivers == 0 {
            return Err(TrySendError::Closed(value));
        }
        if st.queue.len() >= self.0.cap {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Values currently queued (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.0.state.lock().expect("mpmc lock").queue.len()
    }

    /// Whether the queue is empty right now (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("mpmc lock").senders += 1;
        Sender(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("mpmc lock");
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake every parked consumer so it can observe disconnection.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive. `None` means *drained and disconnected*: the
    /// channel is closed (or every sender dropped) and the queue is empty —
    /// the worker-exit condition.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.0.state.lock().expect("mpmc lock");
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Some(v);
            }
            if st.closed || st.senders == 0 {
                return None;
            }
            st = self.0.not_empty.wait(st).expect("mpmc lock");
        }
    }

    /// Closes the channel from the consumer side: producers fail fast,
    /// already-queued values remain receivable.
    pub fn close(&self) {
        let mut st = self.0.state.lock().expect("mpmc lock");
        st.closed = true;
        drop(st);
        self.0.not_empty.notify_all();
        self.0.not_full.notify_all();
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("mpmc lock").receivers += 1;
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("mpmc lock");
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Producers blocked in send() must observe disconnection.
            self.0.not_full.notify_all();
        }
    }
}
