//! The `mgd` stream protocol: length-prefixed, self-contained binary
//! journal chunks.
//!
//! A journal stream on the wire is a sequence of **frames**:
//!
//! ```text
//! [u32 LE payload length][payload bytes]  ...repeated...  [u32 LE 0]
//! ```
//!
//! Every non-empty payload is a complete binary-format journal (header +
//! events + trailer) produced by [`JournalWriter`] — exactly the encoding
//! `journal transcode` writes to disk. Reusing the whole container per
//! chunk instead of inventing a bare event framing buys three things:
//!
//! * **validation for free** — each chunk passes the reader's magic,
//!   trailer and checksum checks, so truncation and bit rot on the wire are
//!   caught by the same typed [`JournalError`]s as on disk;
//! * **self-identification** — every chunk carries the stream's
//!   [`ObsMeta`](mg_obs::ObsMeta), so the first frame alone tells the daemon which detector
//!   session to open;
//! * **streamability** — the binary format's trailer sits at the end of a
//!   *file*, which would otherwise force the sender to finish the journal
//!   before transmitting anything.
//!
//! The zero-length frame marks end-of-stream: the server closes the
//! detector session, writes the plain-text detection report back, and
//! closes the connection.

use mg_obs::{JournalError, JournalFormat, JournalReader, JournalWriter};
use std::io::{self, Read, Write};

/// Upper bound on a single frame payload. Large enough for any sane chunk
/// (a 64 MiB binary chunk is tens of millions of events), small enough that
/// a corrupted length prefix cannot trigger a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// A wire-protocol failure: transport I/O or journal-payload validation.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed (connection reset, short read…).
    Io(io::Error),
    /// A frame payload failed journal validation (truncation, checksum…).
    Journal(JournalError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Journal(e) => write!(f, "wire payload error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<JournalError> for WireError {
    fn from(e: JournalError) -> Self {
        WireError::Journal(e)
    }
}

/// Writes one non-empty frame. Payloads over [`MAX_FRAME`] are refused —
/// the peer would reject them anyway.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() || payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload must be 1..={MAX_FRAME} bytes, got {}", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Writes the end-of-stream marker (a zero-length frame).
pub fn write_end(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&0u32.to_le_bytes())
}

/// Reads one frame. `Ok(None)` is the end-of-stream marker; an oversized
/// length prefix is `InvalidData` (a corrupted or hostile peer), a short
/// read is `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Streams a whole journal as chunked frames followed by the end marker:
/// what `journal send` and the ci gate put on the wire. Every chunk holds
/// at most `chunk` events; an *empty* journal still sends one meta-only
/// chunk so the server learns the stream's identity. Returns the number of
/// events sent.
pub fn send_journal(
    w: &mut impl Write,
    reader: &JournalReader,
    chunk: usize,
) -> Result<u64, WireError> {
    let chunk = chunk.max(1);
    let meta = reader.meta();
    let mut jw = JournalWriter::new(JournalFormat::Binary, meta);
    let mut sent = 0u64;
    let mut framed = false;
    for ev in reader.events() {
        jw.push(&ev?);
        sent += 1;
        if jw.len() >= chunk {
            let full = std::mem::replace(&mut jw, JournalWriter::new(JournalFormat::Binary, meta));
            write_frame(w, &full.finish())?;
            framed = true;
        }
    }
    if !jw.is_empty() || !framed {
        write_frame(w, &jw.finish())?;
    }
    write_end(w)?;
    w.flush()?;
    Ok(sent)
}
