//! `mgd` — the detection daemon.
//!
//! ```text
//! mgd --listen ADDR [OPTIONS]           serve framed journal streams over TCP
//! mgd --journal FILE [--journal FILE..] serve journal files (one stream each)
//! mgd --stdin                           serve one binary/JSONL journal from stdin
//!
//! options:
//!   --workers N        worker threads          [default: available parallelism]
//!   --queue-cap N      bounded queue capacity per worker  [default: 1024]
//!   --batch N          events per queue hand-off          [default: 256]
//!   --policy block|shed  full-queue behavior              [default: block]
//!   --samples N        rank-sum sample size override
//!   --quorum K         convict a node once K distinct streams flag it
//!   --deltas           print DiagnosisDelta JSONL to stdout
//! ```
//!
//! In socket mode the daemon prints `listening on HOST:PORT` (the *bound*
//! port — `--listen 127.0.0.1:0` picks a free one) and serves until
//! SIGTERM/SIGINT, then stops accepting, finishes in-flight connections,
//! drains every queue and exits 0 with a `shutdown :` summary line. Each
//! connection speaks the mg-serve wire protocol (length-prefixed binary
//! journal chunks, zero frame = end) and receives the plain-text detection
//! report — byte-identical to `detect --replay` of the same journal — as
//! the response.

use mg_obs::JournalReader;
use mg_serve::{serve_connection, Daemon, Policy, ServeConfig};
use std::io::Read;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
mgd: multi-stream back-off violation detection daemon

usage:
  mgd --listen HOST:PORT [--workers N] [--queue-cap N] [--batch N]
      [--policy block|shed] [--samples N] [--quorum K] [--deltas]
  mgd --journal FILE [--journal FILE ...] [options]
  mgd --stdin [options]
";

// Minimal raw signal hookup: the workspace is hermetic (no libc crate), and
// all the handler does is flip an AtomicBool — async-signal-safe.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

enum Mode {
    Listen(String),
    Files(Vec<String>),
    Stdin,
}

struct Opts {
    mode: Mode,
    cfg: ServeConfig,
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut cfg = ServeConfig::default();
    let mut listen: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut use_stdin = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = Some(raw_value(&mut it, a)?),
            "--journal" => files.push(raw_value(&mut it, a)?),
            "--stdin" => use_stdin = true,
            "--workers" => cfg.workers = parsed(&mut it, a)?,
            "--queue-cap" => cfg.queue_cap = parsed(&mut it, a)?,
            "--batch" => cfg.batch = parsed(&mut it, a)?,
            "--samples" => cfg.sample_size = Some(parsed(&mut it, a)?),
            "--quorum" => cfg.quorum = Some(parsed(&mut it, a)?),
            "--policy" => {
                let v = raw_value(&mut it, a)?;
                cfg.policy = Policy::parse(&v)
                    .ok_or_else(|| format!("invalid value for --policy: {v} (expected block or shed)"))?;
            }
            "--deltas" => cfg.deltas = true,
            other => return Err(format!("unrecognized argument: {other}")),
        }
    }
    if cfg.workers == 0 || cfg.queue_cap == 0 || cfg.batch == 0 {
        return Err("--workers, --queue-cap and --batch must be at least 1".into());
    }
    if cfg.sample_size == Some(0) {
        return Err("--samples must be at least 1".into());
    }
    if cfg.quorum == Some(0) {
        return Err("--quorum must be at least 1".into());
    }
    let mode = match (listen, files.is_empty(), use_stdin) {
        (Some(addr), true, false) => Mode::Listen(addr),
        (None, false, false) => Mode::Files(files),
        (None, true, true) => Mode::Stdin,
        (None, true, false) => return Err("one of --listen, --journal or --stdin is required".into()),
        _ => return Err("--listen, --journal and --stdin are mutually exclusive".into()),
    };
    Ok(Opts { mode, cfg })
}

fn raw_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    match it.next() {
        Some(v) if !v.starts_with("--") => Ok(v.clone()),
        _ => Err(format!("{flag} requires a value")),
    }
}

fn parsed<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let v = raw_value(it, flag)?;
    v.parse()
        .map_err(|_| format!("invalid value for {flag}: {v}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let delta_out: Option<Box<dyn std::io::Write + Send>> = if opts.cfg.deltas {
        Some(Box::new(std::io::stdout()))
    } else {
        None
    };
    let daemon = Daemon::start(opts.cfg, delta_out);
    // The resolved count (the default tracks the host's parallelism).
    println!("workers  : {} worker thread(s)", daemon.config().workers);
    match opts.mode {
        Mode::Listen(addr) => listen(&addr, daemon),
        Mode::Files(files) => serve_files(&files, daemon),
        Mode::Stdin => serve_stdin(daemon),
    }
}

fn report_shutdown(daemon: Daemon) {
    // Every stream of interest has closed by now (closes are synchronous),
    // so the quorum tally is final.
    if let Some(lines) = daemon.quorum_report() {
        print!("{lines}");
    }
    // `shutdown` blocks until every worker has drained its queue and
    // exited; reaching the print *is* the drain proof.
    let stats = daemon.shutdown();
    println!(
        "shutdown : {} stream(s), {} event(s), {} delta(s), {} dropped, {} abandoned, queues drained",
        stats.streams, stats.events, stats.deltas, stats.dropped, stats.abandoned
    );
}

fn serve_files(files: &[String], daemon: Daemon) {
    for path in files {
        let reader = match JournalReader::open(std::path::Path::new(path)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: cannot load journal from {path}: {e}");
                std::process::exit(1);
            }
        };
        serve_reader(&reader, path, &daemon);
    }
    report_shutdown(daemon);
}

fn serve_stdin(daemon: Daemon) {
    let mut bytes = Vec::new();
    if let Err(e) = std::io::stdin().lock().read_to_end(&mut bytes) {
        eprintln!("error: cannot read stdin: {e}");
        std::process::exit(1);
    }
    let reader = match JournalReader::from_bytes(bytes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: stdin is not a journal: {e}");
            std::process::exit(1);
        }
    };
    serve_reader(&reader, "<stdin>", &daemon);
    report_shutdown(daemon);
}

fn serve_reader(reader: &JournalReader, label: &str, daemon: &Daemon) {
    let mut stream = daemon.open(reader.meta().clone());
    let id = stream.stream_id();
    for ev in reader.events() {
        match ev {
            Ok(o) => stream.push(o),
            Err(e) => {
                eprintln!("error: journal {label} is damaged: {e}");
                std::process::exit(1);
            }
        }
    }
    let Some(report) = stream.close() else {
        eprintln!("error: daemon lost stream #{id}");
        std::process::exit(1);
    };
    println!(
        "stream   : #{id} {label} ({} event(s), {} dropped)",
        report.events, report.dropped
    );
    print!("{}", report.report);
}

fn listen(addr: &str, daemon: Daemon) {
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let bound = listener.local_addr().expect("bound listener has an address");
    println!("listening on {bound}");
    // The gate script parses the line above before sending journals.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");

    let daemon = Arc::new(daemon);
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !TERM.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, peer)) => {
                let daemon = daemon.clone();
                handlers.push(std::thread::spawn(move || {
                    let mut sock = sock;
                    // A wedged peer must not block SIGTERM drain forever.
                    let _ = sock.set_read_timeout(Some(Duration::from_secs(30)));
                    let _ = sock.set_nodelay(true);
                    match serve_connection(&mut sock, &daemon) {
                        Ok(Some(report)) => println!(
                            "stream   : #{} from {peer} ({} event(s), {} dropped)",
                            report.stream, report.events, report.dropped
                        ),
                        Ok(None) => eprintln!("warn: {peer} sent no frames"),
                        Err(e) => eprintln!("warn: stream from {peer} failed: {e}"),
                    }
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("error: accept failed: {e}");
                break;
            }
        }
    }
    drop(listener);
    for h in handlers {
        let _ = h.join();
    }
    let daemon = Arc::try_unwrap(daemon)
        .unwrap_or_else(|_| unreachable!("all connection handlers joined"));
    report_shutdown(daemon);
}
