//! # mg-serve — serving the detector: many streams, one daemon
//!
//! Everything below the `mgd` binary: a bounded [MPMC channel](mpmc) with
//! explicit block/shed back-pressure, the length-prefixed
//! [wire protocol](wire) whose frames are self-contained binary journal
//! chunks, and the [daemon engine](daemon) that demultiplexes concurrent
//! journal streams into incremental [`mg_detect::DetectorSession`]s and
//! emits [`mg_detect::DiagnosisDelta`] JSONL to subscribers.
//!
//! The load-bearing invariant: a report produced by the daemon for a
//! stream is **byte-identical** to `detect --replay` over the same journal
//! — both build their detector through [`mg_detect::SessionSpec::from_meta`]
//! and render through [`mg_detect::render_report`]. The ci socket gate
//! diffs exactly this.
//!
//! ## Quick start
//!
//! ```
//! use mg_serve::{Daemon, ServeConfig};
//! use mg_obs::{Obs, ObsMeta};
//! use mg_sim::SimTime;
//!
//! let daemon = Daemon::start(ServeConfig::default(), None);
//! let meta = ObsMeta {
//!     tagged: 0, vantages: vec![1], pair_distance: 240.0, seed: 7,
//!     params: vec![("kind".into(), "grid".into())],
//! };
//! let mut stream = daemon.open(meta);
//! stream.push(Obs::ChannelEdge { node: 1, busy: true, at: SimTime::from_micros(10) });
//! let report = stream.close().expect("daemon alive");
//! assert!(!report.flagged);
//! let stats = daemon.shutdown();
//! assert_eq!(stats.events, 1);
//! ```

#![warn(missing_docs)]

pub mod daemon;
pub mod mpmc;
pub mod wire;

pub use daemon::{
    default_workers, serve_connection, Daemon, Policy, ServeConfig, ServeStats, StreamHandle,
    StreamReport,
};
pub use wire::{read_frame, send_journal, write_end, write_frame, WireError, MAX_FRAME};
