//! The multi-stream detection daemon: demultiplexes many concurrent
//! journal streams into one incremental [`DetectorSession`] per
//! `(stream, sender, vantage)` and emits typed deltas as JSONL.
//!
//! ## Architecture
//!
//! ```text
//! producers (sockets / files / pipes / bench)
//!      │  StreamHandle::push — batches, Block or Shed policy
//!      ▼
//! bounded MPMC queues (one per worker, crate::mpmc)
//!      │  Job::{Open, Events, Close}
//!      ▼
//! worker threads — sessions: HashMap<stream id, DetectorSession>
//!      │  DiagnosisDelta JSONL → shared subscriber sink
//!      ▼
//! StreamReport (render_report — byte-identical to `detect --replay`)
//! ```
//!
//! A stream is pinned to one worker (`stream id % workers`), so events of
//! one stream are processed in recorded order with no cross-thread
//! synchronization on the session. Each session is built by
//! [`SessionSpec::from_meta`], the *same* constructor `detect --replay`
//! uses; the per-monitor members inside the pooled session are exactly the
//! paper's one-detector-per-`(sender, vantage)` decomposition. Because
//! detection is deterministic in the event order of its own stream, a
//! report produced here is byte-identical to an offline replay of the same
//! journal — the property the ci socket gate diffs.
//!
//! ## Back-pressure
//!
//! Queues are bounded ([`ServeConfig::queue_cap`] jobs per worker). The
//! [`Policy`] decides what a full queue does to the producer: **Block**
//! parks it (lossless, default), **Shed** drops the batch at the producer
//! and accounts it in the stream's drop counter, which travels into
//! [`StreamReport::dropped`] and the daemon-wide [`ServeStats`].

use crate::mpmc;
use crate::wire::{self, WireError};
use mg_detect::{render_report, Diagnosis, DetectorSession, SessionSpec};
use mg_obs::{JournalReader, Obs, ObsMeta};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// The worker count a default [`ServeConfig`] resolves to: the host's
/// available parallelism, falling back to 2 when the platform cannot
/// report it. `mgd` echoes this resolved value at startup.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
}

/// What a producer does when its worker queue is full.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Policy {
    /// Park the producer until space frees up: lossless back-pressure.
    #[default]
    Block,
    /// Drop the batch at the producer and account it: bounded latency.
    Shed,
}

impl Policy {
    /// Parses `block`/`shed` (the `--policy` flag values).
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "block" => Some(Policy::Block),
            "shed" => Some(Policy::Shed),
            _ => None,
        }
    }

    /// The flag spelling of this policy.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Block => "block",
            Policy::Shed => "shed",
        }
    }
}

/// Daemon construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining session work (streams are sharded across
    /// them by stream id).
    pub workers: usize,
    /// Bounded queue capacity per worker, in jobs (one job ≈ one batch).
    pub queue_cap: usize,
    /// Events buffered per [`StreamHandle`] before a queue hand-off.
    pub batch: usize,
    /// Full-queue behavior at the producers.
    pub policy: Policy,
    /// Emit [`mg_detect::DiagnosisDelta`] JSONL to the subscriber sink.
    pub deltas: bool,
    /// Override the sessions' rank-sum sample size (`detect --samples`).
    pub sample_size: Option<usize>,
    /// Cross-stream conviction quorum: when `Some(k)`, every stream that
    /// closes with a flagged verdict casts one vote against its tagged
    /// node, and [`Daemon::quorum_report`] convicts suspects with at least
    /// `k` distinct flagged streams.
    pub quorum: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: default_workers(),
            queue_cap: 1024,
            batch: 256,
            policy: Policy::Block,
            deltas: false,
            sample_size: None,
            quorum: None,
        }
    }
}

/// The terminal state of one served stream, rendered when it closes.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// The daemon-assigned stream id.
    pub stream: u64,
    /// The stream's tagged (monitored) node.
    pub tagged: usize,
    /// Events the producer pushed (accepted + shed).
    pub events: u64,
    /// Events shed at the producer under [`Policy::Shed`].
    pub dropped: u64,
    /// The aggregate verdict.
    pub flagged: bool,
    /// The final diagnosis snapshot.
    pub diagnosis: Diagnosis,
    /// The `samples`/`tests`/`checks`/`verdict` block, byte-identical to
    /// `detect --replay` on the same journal ([`render_report`]).
    pub report: String,
}

/// Daemon-wide counters returned by [`Daemon::shutdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Streams opened over the daemon's lifetime.
    pub streams: u64,
    /// Events ingested by detector sessions.
    pub events: u64,
    /// Diagnosis deltas emitted.
    pub deltas: u64,
    /// Events shed at producers (reported at stream close).
    pub dropped: u64,
    /// Sessions still open at shutdown (producer vanished mid-stream).
    pub abandoned: u64,
}

type DeltaSink = Arc<Mutex<Box<dyn Write + Send>>>;

enum Job {
    Open {
        stream: u64,
        meta: Box<ObsMeta>,
    },
    Events {
        stream: u64,
        batch: Vec<Obs>,
    },
    Close {
        stream: u64,
        dropped: u64,
        reply: mpsc::Sender<StreamReport>,
    },
}

/// The serving engine: owns the worker threads and their queues. Producers
/// interact through [`StreamHandle`]s; [`Daemon::shutdown`] closes the
/// queues, drains them and joins every worker.
pub struct Daemon {
    cfg: ServeConfig,
    txs: Vec<mpmc::Sender<Job>>,
    workers: Vec<JoinHandle<WorkerStats>>,
    next_stream: AtomicU64,
    /// Per-suspect set of streams that closed flagged (quorum mode only).
    votes: Option<VoteMap>,
}

type VoteMap = Arc<Mutex<BTreeMap<usize, BTreeSet<u64>>>>;

impl Daemon {
    /// Starts the workers. `delta_out`, when given, receives one JSONL line
    /// per [`mg_detect::DiagnosisDelta`] (tagged with its stream id) if
    /// `cfg.deltas` is set.
    pub fn start(cfg: ServeConfig, delta_out: Option<Box<dyn Write + Send>>) -> Daemon {
        let sink: Option<DeltaSink> =
            delta_out.filter(|_| cfg.deltas).map(|w| Arc::new(Mutex::new(w)));
        let votes: Option<VoteMap> =
            cfg.quorum.map(|_| Arc::new(Mutex::new(BTreeMap::new())));
        let mut txs = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let (tx, rx) = mpmc::bounded::<Job>(cfg.queue_cap.max(1));
            let sink = sink.clone();
            let votes = votes.clone();
            let sample_size = cfg.sample_size;
            txs.push(tx);
            workers.push(std::thread::spawn(move || worker(rx, sample_size, sink, votes)));
        }
        Daemon {
            cfg,
            txs,
            workers,
            next_stream: AtomicU64::new(1),
            votes,
        }
    }

    /// The config the daemon was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The cross-stream quorum tally, one line per accused node, in node
    /// order — `None` unless the daemon runs with [`ServeConfig::quorum`].
    /// A suspect is convicted when at least `k` *distinct streams* closed
    /// flagged against it; below the quorum it stays cleared. Call after
    /// the streams of interest have closed (a close is synchronous: its
    /// report reply proves the vote landed).
    pub fn quorum_report(&self) -> Option<String> {
        use std::fmt::Write as _;
        let k = self.cfg.quorum?;
        let votes = self.votes.as_ref()?.lock().expect("vote map lock");
        let mut out = String::new();
        if votes.is_empty() {
            let _ = writeln!(out, "quorum   : k = {k}, no stream flagged any node");
            return Some(out);
        }
        for (suspect, streams) in votes.iter() {
            let n = streams.len();
            let _ = writeln!(
                out,
                "quorum   : k = {k}, {n} stream(s) flagged node {suspect} -> {}",
                if n >= k { "CONVICTED" } else { "below quorum, cleared" }
            );
        }
        Some(out)
    }

    /// Opens a new stream described by `meta` and returns its producer
    /// handle. The open itself always uses blocking back-pressure — a
    /// session must exist before events can be shed *meaningfully*.
    pub fn open(&self, meta: ObsMeta) -> StreamHandle {
        let id = self.next_stream.fetch_add(1, Ordering::Relaxed);
        let tx = self.txs[(id as usize) % self.txs.len()].clone();
        let _ = tx.send(Job::Open {
            stream: id,
            meta: Box::new(meta),
        });
        StreamHandle {
            id,
            tx,
            policy: self.cfg.policy,
            batch_cap: self.cfg.batch.max(1),
            buf: Vec::new(),
            events: 0,
            dropped: 0,
        }
    }

    /// Closes every queue, drains the remaining jobs and joins the workers.
    /// Returning at all *is* the drain proof: a worker only exits once its
    /// queue reports disconnected-and-empty.
    pub fn shutdown(self) -> ServeStats {
        drop(self.txs);
        let mut total = ServeStats::default();
        for w in self.workers {
            let s = w.join().expect("serve worker panicked");
            total.streams += s.streams;
            total.events += s.events;
            total.deltas += s.deltas;
            total.dropped += s.dropped;
            total.abandoned += s.abandoned;
        }
        total
    }
}

/// Producer-side handle to one open stream: batches events and applies the
/// daemon's back-pressure policy at the queue boundary.
pub struct StreamHandle {
    id: u64,
    tx: mpmc::Sender<Job>,
    policy: Policy,
    batch_cap: usize,
    buf: Vec<Obs>,
    events: u64,
    dropped: u64,
}

impl StreamHandle {
    /// The daemon-assigned stream id.
    pub fn stream_id(&self) -> u64 {
        self.id
    }

    /// Appends one event; hands a full batch to the worker queue.
    pub fn push(&mut self, obs: Obs) {
        self.buf.push(obs);
        self.events += 1;
        if self.buf.len() >= self.batch_cap {
            self.flush();
        }
    }

    /// Pushes the current partial batch through the queue (respecting the
    /// policy). A no-op when the buffer is empty.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buf);
        let n = batch.len() as u64;
        let job = Job::Events {
            stream: self.id,
            batch,
        };
        match self.policy {
            Policy::Block => {
                if self.tx.send(job).is_err() {
                    self.dropped += n;
                }
            }
            Policy::Shed => {
                if self.tx.try_send(job).is_err() {
                    self.dropped += n;
                }
            }
        }
    }

    /// Events pushed so far (accepted + shed).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events shed so far under [`Policy::Shed`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flushes, closes the stream and returns its final report. `None`
    /// only if the daemon is already gone.
    pub fn close(mut self) -> Option<StreamReport> {
        self.flush();
        let (rtx, rrx) = mpsc::channel();
        // Close is never shed: the producer must learn the verdict.
        self.tx
            .send(Job::Close {
                stream: self.id,
                dropped: self.dropped,
                reply: rtx,
            })
            .ok()?;
        rrx.recv().ok()
    }
}

#[derive(Default)]
struct WorkerStats {
    streams: u64,
    events: u64,
    deltas: u64,
    dropped: u64,
    abandoned: u64,
}

struct StreamState {
    meta: ObsMeta,
    session: DetectorSession,
    events: u64,
}

fn worker(
    rx: mpmc::Receiver<Job>,
    sample_size: Option<usize>,
    sink: Option<DeltaSink>,
    votes: Option<VoteMap>,
) -> WorkerStats {
    let mut sessions: HashMap<u64, StreamState> = HashMap::new();
    let mut stats = WorkerStats::default();
    let mut lines = String::new();
    while let Some(job) = rx.recv() {
        match job {
            Job::Open { stream, meta } => {
                let mut spec = SessionSpec::from_meta(&meta);
                if let Some(n) = sample_size {
                    spec = spec.with_sample_size(n);
                }
                sessions.insert(
                    stream,
                    StreamState {
                        meta: *meta,
                        session: spec.build(),
                        events: 0,
                    },
                );
                stats.streams += 1;
            }
            Job::Events { stream, batch } => {
                let Some(s) = sessions.get_mut(&stream) else {
                    continue;
                };
                s.events += batch.len() as u64;
                stats.events += batch.len() as u64;
                for obs in &batch {
                    for d in s.session.ingest(obs) {
                        stats.deltas += 1;
                        if sink.is_some() {
                            // `{"stream":N,` + the delta object's own body.
                            let body = d.to_json().render();
                            lines.push_str(&format!("{{\"stream\":{stream},{}\n", &body[1..]));
                        }
                    }
                }
                if let (Some(sink), false) = (&sink, lines.is_empty()) {
                    let mut w = sink.lock().expect("delta sink lock");
                    let _ = w.write_all(lines.as_bytes());
                    lines.clear();
                }
            }
            Job::Close {
                stream,
                dropped,
                reply,
            } => {
                let Some(s) = sessions.remove(&stream) else {
                    continue;
                };
                stats.dropped += dropped;
                let diag = s.session.diagnosis();
                if let (Some(votes), true) = (&votes, diag.is_flagged()) {
                    let mut map = votes.lock().expect("vote map lock");
                    map.entry(s.meta.tagged).or_default().insert(stream);
                }
                let report = render_report(s.meta.tagged, sample_size.unwrap_or(50), false, &diag);
                let _ = reply.send(StreamReport {
                    stream,
                    tagged: s.meta.tagged,
                    // Pushed = accepted (worker-side) + shed (producer-side).
                    events: s.events + dropped,
                    dropped,
                    flagged: diag.is_flagged(),
                    diagnosis: diag,
                    report,
                });
            }
        }
    }
    if let Some(sink) = &sink {
        let mut w = sink.lock().expect("delta sink lock");
        let _ = w.flush();
    }
    stats.abandoned = sessions.len() as u64;
    stats
}

/// Serves one framed connection (socket, pipe — anything `Read + Write`):
/// reads chunked journal frames until the end marker, feeds them into a
/// daemon stream, then writes the final detection report back and returns
/// it. `Ok(None)` means the peer sent no frames at all.
///
/// A transport or validation error abandons the stream (its session stays
/// open until daemon shutdown and is counted in [`ServeStats::abandoned`]).
pub fn serve_connection<S: Read + Write>(
    conn: &mut S,
    daemon: &Daemon,
) -> Result<Option<StreamReport>, WireError> {
    let mut handle: Option<StreamHandle> = None;
    while let Some(payload) = wire::read_frame(conn)? {
        let reader = JournalReader::from_bytes(payload)?;
        let h = handle.get_or_insert_with(|| daemon.open(reader.meta().clone()));
        for ev in reader.events() {
            h.push(ev?);
        }
    }
    let Some(h) = handle else {
        return Ok(None);
    };
    let report = h.close();
    if let Some(r) = &report {
        conn.write_all(r.report.as_bytes())?;
        conn.flush()?;
    }
    Ok(report)
}
