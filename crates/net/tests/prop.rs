//! Property-based tests for the network layer: mobility, traffic models,
//! and scenario layout (mg-testkit harness).

use mg_geom::Vec2;
use mg_net::{RandomWaypoint, Scenario, ScenarioConfig, TopologyCfg, TrafficModel};
use mg_sim::rng::Xoshiro256;
use mg_sim::{SimDuration, SimTime};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq, tk_assert_ne};

/// Random waypoint never leaves the field and never exceeds its speed
/// bound, for any field size, speed range, and pause time.
#[test]
fn rwp_stays_in_field_at_bounded_speed() {
    check("rwp_stays_in_field_at_bounded_speed", |g: &mut Gen| -> TkResult {
        let field_w = g.f64_in(100.0..3000.0);
        let field_h = g.f64_in(100.0..3000.0);
        let speed_max = g.f64_in(1.0..30.0);
        let pause = SimDuration::from_millis(g.u64_in(0..5000));
        let seed = g.any_u64();
        let start = Vec2::new(
            g.f64_in(0.0..1.0) * field_w,
            g.f64_in(0.0..1.0) * field_h,
        );
        let mut w = RandomWaypoint::new(start, field_w, field_h, 0.0, speed_max, pause);
        let mut rng = Xoshiro256::new(seed);
        let dt = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO;
        let mut prev = w.position();
        for _ in 0..500 {
            t += dt;
            let p = w.advance(t, dt, &mut rng);
            tk_assert!((0.0..=field_w).contains(&p.x), "{p:?} outside field");
            tk_assert!((0.0..=field_h).contains(&p.y), "{p:?} outside field");
            let moved = prev.distance(p);
            tk_assert!(
                moved <= speed_max * 0.1 + 1e-9,
                "moved {moved} m in 100 ms at speed_max {speed_max}"
            );
            prev = p;
        }
        Ok(())
    });
}

/// Poisson gaps are positive with (roughly) the configured mean.
#[test]
fn poisson_gaps_match_rate() {
    check("poisson_gaps_match_rate", |g: &mut Gen| -> TkResult {
        let rate = g.f64_in(1.0..500.0);
        let seed = g.any_u64();
        let m = TrafficModel::Poisson { rate_pps: rate };
        let mut rng = Xoshiro256::new(seed);
        let n = 2000;
        let mut total = 0.0;
        for _ in 0..n {
            let gap = m.next_gap(&mut rng).expect("poisson has a clock");
            let secs = gap.as_secs_f64();
            tk_assert!(secs >= 0.0);
            total += secs;
        }
        let mean = total / f64::from(n);
        tk_assert!(
            (mean - 1.0 / rate).abs() < 0.2 / rate,
            "rate {rate}: mean gap {mean}"
        );
        Ok(())
    });
}

/// CBR is exactly periodic, with a random initial phase inside one period.
#[test]
fn cbr_period_and_phase() {
    check("cbr_period_and_phase", |g: &mut Gen| -> TkResult {
        let interval = SimDuration::from_micros(g.u64_in(1..1_000_000));
        let seed = g.any_u64();
        let m = TrafficModel::Cbr { interval };
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..10 {
            tk_assert_eq!(m.next_gap(&mut rng), Some(interval));
        }
        let phase = m.initial_gap(&mut rng).expect("CBR has a clock");
        tk_assert!(phase < interval, "phase {phase:?} >= interval {interval:?}");
        Ok(())
    });
}

/// Saturated sources are completion-driven: no clock at all.
#[test]
fn saturated_is_clockless() {
    check("saturated_is_clockless", |g: &mut Gen| -> TkResult {
        let seed = g.any_u64();
        let mut rng = Xoshiro256::new(seed);
        tk_assert_eq!(TrafficModel::Saturated.next_gap(&mut rng), None);
        tk_assert_eq!(TrafficModel::Saturated.initial_gap(&mut rng), None);
        Ok(())
    });
}

/// Scenario layout honors the configured topology: node count matches and
/// every node lands inside the field, for grids and random placements.
#[test]
fn scenario_layout_respects_config() {
    check("scenario_layout_respects_config", |g: &mut Gen| -> TkResult {
        let seed = g.any_u64();
        let topology = if g.bool() {
            TopologyCfg::Grid {
                rows: g.usize_in(1..7),
                cols: g.usize_in(1..7),
                spacing: g.f64_in(50.0..300.0),
            }
        } else {
            TopologyCfg::Random {
                nodes: g.usize_in(2..40),
            }
        };
        let cfg = ScenarioConfig {
            topology,
            seed,
            ..ScenarioConfig::grid_paper(seed)
        };
        let scenario = Scenario::new(cfg);
        tk_assert_eq!(scenario.positions().len(), topology.node_count());
        for p in scenario.positions() {
            tk_assert!((0.0..=cfg.field_w).contains(&p.x), "{p:?}");
            tk_assert!((0.0..=cfg.field_h).contains(&p.y), "{p:?}");
        }
        // Layout is a pure function of the config.
        let again = Scenario::new(cfg);
        tk_assert_eq!(scenario.positions(), again.positions());
        Ok(())
    });
}

/// The tagged pair is always two distinct nodes within one-hop range of
/// each other, for the paper's layouts under any seed.
#[test]
fn tagged_pair_is_a_one_hop_link() {
    check("tagged_pair_is_a_one_hop_link", |g: &mut Gen| -> TkResult {
        let seed = g.any_u64();
        let cfg = if g.bool() {
            ScenarioConfig::grid_paper(seed)
        } else {
            ScenarioConfig::random_paper(seed)
        };
        let scenario = Scenario::new(cfg);
        let (s, r) = scenario.tagged_pair();
        tk_assert_ne!(s, r);
        tk_assert!(s < scenario.positions().len());
        tk_assert!(r < scenario.positions().len());
        let d = scenario.positions()[s].distance(scenario.positions()[r]);
        tk_assert!(d <= cfg.tx_range, "tagged pair {d} m apart");
        Ok(())
    });
}
