//! The simulation world: event loop + glue between scheduler, medium, MACs,
//! traffic, mobility and routing.

use crate::aodv::{AodvLite, NetMsg, RouterAction};
use crate::config::{ScenarioConfig, Shards, TopologyCfg, TrafficKind};
use crate::mobility::RandomWaypoint;
use crate::traffic::{DstPolicy, SourceCfg, TrafficModel};
use crate::NodeId;
use mg_dcf::{BackoffPolicy, DcfMac, Dest, Frame, MacAction, MacSdu, MacTiming, Timer};
use mg_geom::{placement, Vec2};
use mg_phy::{Medium, MediumIndex, PropagationModel, RadioParams, RxOutcome, SlabPlan, TxId};
use mg_sim::rng::{Rng, RngDirectory, Xoshiro256};
use mg_sim::{EventHandle, Scheduler, ShardedScheduler, SimDuration, SimTime, GLOBAL_REGION};
use mg_trace::{Counter, EventKind, Metrics, Tracer};
use std::collections::{HashMap, VecDeque};

/// Payload length used for routing-control SDUs (RREQ/RREP).
const CTRL_PAYLOAD: u16 = 32;
/// How often mobility positions are advanced.
const MOBILITY_TICK: SimDuration = SimDuration::from_millis(100);
/// Queue depth kept for saturated sources.
const SATURATION_DEPTH: usize = 2;

/// Hooks for everything observable in the network — the attachment point of
/// the detection framework (`mg-detect`) and of measurement probes.
///
/// All methods have empty defaults; implement only what you need. Events
/// carry exactly what a co-located process could observe at the node in
/// question; only `on_frame_decoded` also exposes the `medium`, so that
/// projection adapters (which translate world callbacks into the detection
/// layer's serializable `Obs` alphabet) can read node positions at the one
/// instant the hand-off scheme needs geometry. Detectors themselves never
/// see the medium.
#[allow(unused_variables)]
pub trait NetObserver {
    /// `node`'s physical carrier-sense state changed at `now`.
    fn on_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {}
    /// `src` put `frame` on the air at `now`; it will end at `end`.
    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {}
    /// `at` decoded `frame` (on air from `start` to `end`).
    fn on_frame_decoded(&mut self, medium: &Medium, at: NodeId, frame: &Frame, start: SimTime, end: SimTime) {}
    /// `at` perceived a corrupted frame ending at `now`.
    fn on_frame_garbled(&mut self, at: NodeId, now: SimTime) {}
    /// `node` accepted a packet into its MAC queue.
    fn on_enqueue(&mut self, node: NodeId, sdu: &MacSdu, now: SimTime) {}
    /// `node`'s MAC finished with a packet (ACKed or dropped).
    fn on_packet_done(&mut self, node: NodeId, sdu: &MacSdu, delivered: bool, now: SimTime) {}
    /// A routed application packet reached its final destination.
    fn on_app_deliver(&mut self, node: NodeId, origin: NodeId, app_id: u64, now: SimTime) {}
}

/// The do-nothing observer.
impl NetObserver for () {}

enum Ev {
    MacTimer { node: NodeId, timer: Timer },
    TxEnd { node: NodeId, tx: TxId },
    Traffic { src: usize },
    Mobility,
}

/// Per-run diagnostics of the sharded event engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardStats {
    /// Number of region lanes.
    pub regions: usize,
    /// Epoch barriers crossed.
    pub barriers: u64,
    /// Events exchanged through cross-region inboxes.
    pub cross_region_events: u64,
    /// Cross-lane schedules that arrived inside the current epoch window
    /// (correctness-neutral; nonzero means the lookahead overestimates the
    /// true minimum cross-region delay).
    pub lookahead_violations: u64,
}

/// The world's event queue: the serial reference heap, or the region-
/// sharded engine — byte-identical by construction and by the cross-shard
/// gate in `tests/trace_determinism.rs`.
enum EvQueue {
    Serial(Scheduler<Ev>),
    Sharded(ShardedScheduler<Ev>),
}

impl EvQueue {
    fn now(&self) -> SimTime {
        match self {
            EvQueue::Serial(s) => s.now(),
            EvQueue::Sharded(s) => s.now(),
        }
    }

    fn events_fired(&self) -> u64 {
        match self {
            EvQueue::Serial(s) => s.events_fired(),
            EvQueue::Sharded(s) => s.events_fired(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            EvQueue::Serial(s) => s.is_empty(),
            EvQueue::Sharded(s) => s.is_empty(),
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        match self {
            EvQueue::Serial(s) => s.set_tracer(tracer),
            EvQueue::Sharded(s) => s.set_tracer(tracer),
        }
    }

    /// Schedules into `lane` (ignored by the serial heap).
    fn schedule_at(&mut self, at: SimTime, lane: usize, ev: Ev) -> EventHandle {
        match self {
            EvQueue::Serial(s) => s.schedule_at(at, ev),
            EvQueue::Sharded(s) => s.schedule_at_in(at, lane, ev),
        }
    }

    fn schedule_in(&mut self, after: SimDuration, lane: usize, ev: Ev) -> EventHandle {
        match self {
            EvQueue::Serial(s) => s.schedule_in(after, ev),
            EvQueue::Sharded(s) => s.schedule_in_region(after, lane, ev),
        }
    }

    fn cancel(&mut self, h: EventHandle) {
        match self {
            EvQueue::Serial(s) => s.cancel(h),
            EvQueue::Sharded(s) => s.cancel(h),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            EvQueue::Serial(s) => s.pop(),
            EvQueue::Sharded(s) => s.pop(),
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            EvQueue::Serial(s) => s.peek_time(),
            EvQueue::Sharded(s) => s.peek_time(),
        }
    }
}

struct SourceState {
    cfg: SourceCfg,
    rng: Xoshiro256,
    sticky: Option<NodeId>,
}

/// The simulation world. Build one directly with [`World::new`] or from a
/// [`ScenarioConfig`] via [`Scenario`].
pub struct World<O: NetObserver> {
    sched: EvQueue,
    medium: Medium,
    timing: MacTiming,
    macs: Vec<DcfMac>,
    timers: HashMap<(NodeId, Timer), EventHandle>,
    in_flight: HashMap<TxId, Frame>,
    sources: Vec<SourceState>,
    saturated_by_node: HashMap<NodeId, usize>,
    walkers: Option<Vec<RandomWaypoint>>,
    mobility_rng: Xoshiro256,
    routers: Option<Vec<AodvLite>>,
    net_msgs: HashMap<u64, NetMsg>,
    next_sdu_id: u64,
    tx_range: f64,
    phy_rng: Xoshiro256,
    rngs: RngDirectory,
    observer: O,
    tracer: Tracer,
    metrics: Metrics,
    /// Enqueue instants of packets still in flight (latency accounting;
    /// only populated while metrics are enabled).
    lat_pending: HashMap<u64, SimTime>,
    /// Packets handed up by MACs (unicast data receptions).
    pub mac_delivered: u64,
    /// Routed application packets that reached their final destination.
    pub app_delivered: u64,
}

impl<O: NetObserver> World<O> {
    /// Creates a world with one DCF MAC per position, all compliant.
    pub fn new(
        positions: Vec<Vec2>,
        propagation: PropagationModel,
        tx_range: f64,
        cs_range: f64,
        timing: MacTiming,
        seed: u64,
        observer: O,
    ) -> Self {
        let radio = RadioParams::calibrated(&propagation, tx_range, cs_range);
        let n = positions.len();
        let rngs = RngDirectory::new(seed);
        let macs = (0..n)
            .map(|i| {
                DcfMac::new(
                    i,
                    timing,
                    BackoffPolicy::Compliant,
                    rngs.stream("mac", i as u64),
                )
            })
            .collect();
        World {
            sched: EvQueue::Serial(Scheduler::new()),
            medium: Medium::new(propagation, radio, positions),
            timing,
            macs,
            timers: HashMap::new(),
            in_flight: HashMap::new(),
            sources: Vec::new(),
            saturated_by_node: HashMap::new(),
            walkers: None,
            mobility_rng: rngs.stream("mobility", 0),
            routers: None,
            net_msgs: HashMap::new(),
            next_sdu_id: 0,
            tx_range,
            phy_rng: rngs.stream("phy", 0),
            rngs,
            observer,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            lat_pending: HashMap::new(),
            mac_delivered: 0,
            app_delivered: 0,
        }
    }

    /// Journals the whole stack's events through `tracer`: the handle is
    /// propagated to the scheduler, the medium, and every MAC. Disabled by
    /// default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.sched.set_tracer(tracer.clone());
        self.medium.set_tracer(tracer.clone());
        for mac in &mut self.macs {
            mac.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Records per-node counters, latency, and back-off draws into
    /// `metrics`: the handle is propagated to every MAC. Disabled by
    /// default.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        for mac in &mut self.macs {
            mac.set_metrics(metrics.clone());
        }
        self.metrics = metrics;
    }

    /// The tracer threaded through the stack (disabled unless
    /// [`World::set_tracer`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics collector (disabled unless [`World::set_metrics`] was
    /// called).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.macs.len()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events processed so far (diagnostic).
    pub fn events_fired(&self) -> u64 {
        self.sched.events_fired()
    }

    /// Read access to a node's MAC (state snapshot, statistics, PRS).
    pub fn mac(&self, node: NodeId) -> &DcfMac {
        &self.macs[node]
    }

    /// The shared medium (positions, carrier-sense queries).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// The MAC timing in force.
    pub fn timing(&self) -> &MacTiming {
        &self.timing
    }

    /// The observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer (e.g. to read out a detector verdict
    /// mid-run).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the world, returning the observer.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Replaces `node`'s back-off policy (do this before traffic starts).
    pub fn set_policy(&mut self, node: NodeId, policy: BackoffPolicy) {
        self.macs[node].set_policy(policy);
    }

    /// Sets `node`'s RTS threshold (legacy basic access above it bypasses
    /// the verifiable handshake — detectable via `UnverifiedData`).
    pub fn set_rts_threshold(&mut self, node: NodeId, bytes: u32) {
        self.macs[node].set_rts_threshold(bytes);
    }

    /// Switches the medium's spatial-index strategy (results are
    /// byte-identical either way; `Grid` is the default and the fast one).
    pub fn set_medium_index(&mut self, index: MediumIndex) {
        self.medium.set_index(index);
    }

    /// Switches the event loop to the region-sharded engine: the field is
    /// cut into vertical slabs of `field_w / n` meters, every node's events
    /// run in its region's lane, and lanes advance in lockstep SIFS-length
    /// epochs. Results are byte-identical to the serial engine (cross-shard
    /// gate in `tests/trace_determinism.rs`); mobile nodes are handed off
    /// between regions as they move — the lane of each *future* event is
    /// looked up at schedule time, so a handoff is just the region map
    /// changing under the mobility tick.
    ///
    /// # Panics
    ///
    /// Panics if any event has already been scheduled or fired: sharding
    /// must be decided before sources, mobility, or traffic exist.
    pub fn enable_sharding(&mut self, shards: Shards, field_w: f64) {
        assert!(
            self.sched.is_empty() && self.sched.events_fired() == 0,
            "enable_sharding must run before any event is scheduled"
        );
        match shards {
            Shards::Serial => {
                self.medium.set_shard_plan(None);
                let mut serial = Scheduler::new();
                serial.set_tracer(self.tracer.clone());
                self.sched = EvQueue::Serial(serial);
            }
            Shards::Regions(n) => {
                self.medium.set_shard_plan(Some(SlabPlan::new(n, field_w)));
                // Lookahead = SIFS: the shortest delay after which one
                // node's dispatch can schedule work at another node (every
                // MAC response is at least one SIFS out).
                let mut sharded = ShardedScheduler::new(n as usize, self.timing.sifs);
                sharded.set_tracer(self.tracer.clone());
                self.sched = EvQueue::Sharded(sharded);
            }
        }
    }

    /// Diagnostics of the sharded engine (`None` on the serial path).
    pub fn shard_stats(&self) -> Option<ShardStats> {
        match &self.sched {
            EvQueue::Serial(_) => None,
            EvQueue::Sharded(s) => Some(ShardStats {
                regions: s.regions(),
                barriers: s.barriers(),
                cross_region_events: s.cross_region_events(),
                lookahead_violations: s.lookahead_violations(),
            }),
        }
    }

    /// The event lane owning `ev`: the region of the event's home node
    /// (mobility ticks are global and run in lane 0). Looked up at schedule
    /// time, so mobile nodes hand off between regions automatically.
    fn lane_of(&self, ev: &Ev) -> usize {
        match *ev {
            Ev::MacTimer { node, .. } | Ev::TxEnd { node, .. } => self.medium.region_of(node),
            Ev::Traffic { src } => self.medium.region_of(self.sources[src].cfg.node),
            Ev::Mobility => GLOBAL_REGION,
        }
    }

    fn schedule_ev_at(&mut self, at: SimTime, ev: Ev) -> EventHandle {
        let lane = self.lane_of(&ev);
        self.sched.schedule_at(at, lane, ev)
    }

    fn schedule_ev_in(&mut self, after: SimDuration, ev: Ev) -> EventHandle {
        let lane = self.lane_of(&ev);
        self.sched.schedule_in(after, lane, ev)
    }

    /// Registers a traffic source and schedules its first arrival.
    pub fn add_source(&mut self, cfg: SourceCfg) {
        let idx = self.sources.len();
        let mut rng = self.rngs.stream("traffic", idx as u64);
        let first = cfg.model.initial_gap(&mut rng);
        self.sources.push(SourceState {
            cfg,
            rng,
            sticky: None,
        });
        match cfg.model {
            TrafficModel::Saturated => {
                self.saturated_by_node.insert(cfg.node, idx);
                // Prime the queue with a couple of packets at t = 0.
                for _ in 0..SATURATION_DEPTH {
                    self.schedule_ev_at(self.sched.now(), Ev::Traffic { src: idx });
                }
            }
            _ => {
                let gap = first.expect("clocked models have an initial gap");
                self.schedule_ev_in(gap, Ev::Traffic { src: idx });
            }
        }
    }

    /// Enables random-waypoint mobility for every node.
    pub fn enable_mobility(&mut self, speed_min: f64, speed_max: f64, pause: SimDuration, field_w: f64, field_h: f64) {
        let walkers = (0..self.node_count())
            .map(|i| {
                RandomWaypoint::new(
                    self.medium.position(i),
                    field_w,
                    field_h,
                    speed_min,
                    speed_max,
                    pause,
                )
            })
            .collect();
        self.walkers = Some(walkers);
        self.schedule_ev_in(MOBILITY_TICK, Ev::Mobility);
    }

    /// Enables AODV-lite routing on every node (needed by
    /// [`World::send_routed`]).
    pub fn enable_routing(&mut self) {
        self.routers = Some((0..self.node_count()).map(AodvLite::new).collect());
    }

    /// Hands a routed application packet to `origin`'s router.
    ///
    /// # Panics
    ///
    /// Panics unless [`World::enable_routing`] was called.
    pub fn send_routed(&mut self, origin: NodeId, target: NodeId, app_id: u64) {
        assert!(self.routers.is_some(), "call enable_routing() first");
        let actions = self.routers.as_mut().unwrap()[origin].send(target, app_id);
        let mut work = VecDeque::new();
        self.handle_router_actions(origin, actions, &mut work);
        self.drain(&mut work);
    }

    /// Runs the event loop until virtual time `until` (events beyond it stay
    /// queued).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.sched.pop().expect("peeked event exists");
            self.dispatch(now, ev);
        }
    }

    /// Runs for `span` of virtual time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let until = self.now() + span;
        self.run_until(until);
    }

    // ------------------------------------------------------------------

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::MacTimer { node, timer } => {
                self.timers.remove(&(node, timer));
                let actions = self.macs[node].on_timer(timer, now);
                self.apply(node, actions);
            }
            Ev::TxEnd { node, tx } => self.tx_end(node, tx, now),
            Ev::Traffic { src } => self.traffic_arrival(src, now),
            Ev::Mobility => self.mobility_tick(now),
        }
    }

    fn tx_end(&mut self, node: NodeId, tx: TxId, now: SimTime) {
        let frame = self
            .in_flight
            .remove(&tx)
            .expect("TxEnd for unknown transmission");
        let ended = self.medium.end_tx(tx, now);
        debug_assert_eq!(ended.src, node);

        // 1. The transmitter moves on.
        let actions = self.macs[node].on_tx_end(now);
        self.apply(node, actions);

        // 2. Reception outcomes — strictly before the idle edges (contract).
        // Receptions are sparse (covered nodes only, ascending id), which
        // keeps this loop O(footprint) instead of O(world).
        for &(v, outcome) in &ended.receptions {
            match outcome {
                RxOutcome::Decoded => {
                    self.observer
                        .on_frame_decoded(&self.medium, v, &frame, ended.start, now);
                    let actions = self.macs[v].on_frame_decoded(&frame, now);
                    self.apply(v, actions);
                }
                RxOutcome::Collided => {
                    self.observer.on_frame_garbled(v, now);
                    let actions = self.macs[v].on_frame_garbled(now);
                    self.apply(v, actions);
                }
                _ => {}
            }
        }

        // 3. Idle edges.
        for e in ended.edges {
            self.observer
                .on_channel_edge(e.node, e.busy, now);
            let actions = self.macs[e.node].on_channel_edge(e.busy, now);
            self.apply(e.node, actions);
        }
    }

    fn traffic_arrival(&mut self, src: usize, now: SimTime) {
        let (node, dst_policy, payload_len) = {
            let s = &self.sources[src];
            (s.cfg.node, s.cfg.dst, s.cfg.payload_len)
        };
        // Schedule the next arrival (clocked models only; saturated sources
        // are re-driven by packet completions).
        let gap = {
            let s = &mut self.sources[src];
            s.cfg.model.next_gap(&mut s.rng)
        };
        if let Some(gap) = gap {
            self.schedule_ev_in(gap, Ev::Traffic { src });
        }
        let Some(dst) = self.pick_dst(src, node, dst_policy) else {
            return; // isolated node this instant; skip the packet
        };
        let sdu = MacSdu {
            id: self.alloc_sdu_id(),
            dst: Dest::Unicast(dst),
            payload_len,
        };
        self.note_enqueue(node, &sdu, now);
        let actions = self.macs[node].enqueue(sdu, now);
        self.apply(node, actions);
    }

    /// Enqueue bookkeeping shared by every packet-injection path: journal
    /// the event, start the latency clock, notify the observer.
    fn note_enqueue(&mut self, node: NodeId, sdu: &MacSdu, now: SimTime) {
        self.tracer
            .emit(now.as_nanos(), Some(node), EventKind::Enqueue { sdu: sdu.id });
        if self.metrics.is_enabled() {
            self.lat_pending.insert(sdu.id, now);
        }
        self.observer.on_enqueue(node, sdu, now);
    }

    fn pick_dst(&mut self, src: usize, node: NodeId, policy: DstPolicy) -> Option<NodeId> {
        match policy {
            DstPolicy::Fixed(d) => Some(d),
            DstPolicy::StickyRandomNeighbor => {
                let sticky = self.sources[src].sticky;
                let in_range = sticky
                    .map(|d| {
                        self.medium.position(node).distance(self.medium.position(d))
                            <= self.tx_range
                    })
                    .unwrap_or(false);
                if in_range {
                    return sticky;
                }
                let fresh = self.random_neighbor(src, node);
                self.sources[src].sticky = fresh;
                fresh
            }
            DstPolicy::PerPacketRandomNeighbor => self.random_neighbor(src, node),
        }
    }

    fn random_neighbor(&mut self, src: usize, node: NodeId) -> Option<NodeId> {
        let p = self.medium.position(node);
        // Index-served and ascending, so the RNG pick lands on the same
        // neighbor under either MediumIndex.
        let mut neighbors = self.medium.nodes_within(p, self.tx_range);
        neighbors.retain(|&v| v != node);
        if neighbors.is_empty() {
            return None;
        }
        let pick = self.sources[src].rng.below(neighbors.len() as u64) as usize;
        Some(neighbors[pick])
    }

    fn mobility_tick(&mut self, now: SimTime) {
        if let Some(walkers) = &mut self.walkers {
            for (i, w) in walkers.iter_mut().enumerate() {
                let pos = w.advance(now, MOBILITY_TICK, &mut self.mobility_rng);
                self.medium.set_position(i, pos);
            }
            self.schedule_ev_in(MOBILITY_TICK, Ev::Mobility);
        }
    }

    fn alloc_sdu_id(&mut self) -> u64 {
        let id = self.next_sdu_id;
        self.next_sdu_id += 1;
        id
    }

    fn arm(&mut self, node: NodeId, timer: Timer, at: SimTime) {
        if let Some(old) = self.timers.remove(&(node, timer)) {
            self.sched.cancel(old);
        }
        let h = self.schedule_ev_at(at, Ev::MacTimer { node, timer });
        self.timers.insert((node, timer), h);
    }

    fn disarm(&mut self, node: NodeId, timer: Timer) {
        if let Some(h) = self.timers.remove(&(node, timer)) {
            self.sched.cancel(h);
        }
    }

    /// Executes MAC actions, breadth-first, until quiescent.
    fn apply(&mut self, node: NodeId, actions: Vec<MacAction>) {
        let mut work: VecDeque<(NodeId, MacAction)> =
            actions.into_iter().map(|a| (node, a)).collect();
        self.drain(&mut work);
    }

    fn drain(&mut self, work: &mut VecDeque<(NodeId, MacAction)>) {
        while let Some((n, action)) = work.pop_front() {
            match action {
                MacAction::Arm { timer, at } => self.arm(n, timer, at),
                MacAction::Disarm { timer } => self.disarm(n, timer),
                MacAction::StartTx { frame } => {
                    let now = self.sched.now();
                    let airtime = self.timing.frame_airtime(&frame);
                    let (tx, edges) = self.medium.begin_tx(n, now, &mut self.phy_rng);
                    let end = now + airtime;
                    self.schedule_ev_at(end, Ev::TxEnd { node: n, tx });
                    self.observer.on_tx_start(n, &frame, now, end);
                    self.in_flight.insert(tx, frame);
                    for e in edges {
                        self.observer
                            .on_channel_edge(e.node, e.busy, now);
                        for a in self.macs[e.node].on_channel_edge(e.busy, now) {
                            work.push_back((e.node, a));
                        }
                    }
                }
                MacAction::Deliver { from, sdu } => {
                    self.mac_delivered += 1;
                    if self.routers.is_some() {
                        if let Some(&msg) = self.net_msgs.get(&sdu.id) {
                            let actions = self.routers.as_mut().unwrap()[n].on_receive(from, msg);
                            self.handle_router_actions(n, actions, work);
                        }
                    }
                }
                MacAction::PacketDone { sdu, delivered } => {
                    let now = self.sched.now();
                    self.tracer.emit(
                        now.as_nanos(),
                        Some(n),
                        EventKind::PacketDone { sdu: sdu.id, delivered },
                    );
                    self.metrics
                        .bump(n, if delivered { Counter::Delivered } else { Counter::Dropped });
                    if let Some(t0) = self.lat_pending.remove(&sdu.id) {
                        self.metrics
                            .record_latency_ns(now.saturating_since(t0).as_nanos());
                    }
                    self.observer.on_packet_done(n, &sdu, delivered, now);
                    if let Some(&si) = self.saturated_by_node.get(&n) {
                        let policy = self.sources[si].cfg.dst;
                        let payload_len = self.sources[si].cfg.payload_len;
                        if let Some(d) = self.pick_dst(si, n, policy) {
                            let refill = MacSdu {
                                id: self.alloc_sdu_id(),
                                dst: Dest::Unicast(d),
                                payload_len,
                            };
                            self.note_enqueue(n, &refill, now);
                            for a in self.macs[n].enqueue(refill, now) {
                                work.push_back((n, a));
                            }
                        } else {
                            // No neighbor right now (mobile); retry shortly.
                            self.schedule_ev_in(MOBILITY_TICK, Ev::Traffic { src: si });
                        }
                    }
                }
            }
        }
    }

    fn handle_router_actions(
        &mut self,
        node: NodeId,
        actions: Vec<RouterAction>,
        work: &mut VecDeque<(NodeId, MacAction)>,
    ) {
        let now = self.sched.now();
        for action in actions {
            match action {
                RouterAction::Broadcast(msg) => {
                    let sdu = MacSdu {
                        id: self.alloc_sdu_id(),
                        dst: Dest::Broadcast,
                        payload_len: CTRL_PAYLOAD,
                    };
                    self.net_msgs.insert(sdu.id, msg);
                    self.note_enqueue(node, &sdu, now);
                    for a in self.macs[node].enqueue(sdu, now) {
                        work.push_back((node, a));
                    }
                }
                RouterAction::Unicast(next, msg) => {
                    let payload_len = match msg {
                        NetMsg::Data { .. } => 512,
                        _ => CTRL_PAYLOAD,
                    };
                    let sdu = MacSdu {
                        id: self.alloc_sdu_id(),
                        dst: Dest::Unicast(next),
                        payload_len,
                    };
                    self.net_msgs.insert(sdu.id, msg);
                    self.note_enqueue(node, &sdu, now);
                    for a in self.macs[node].enqueue(sdu, now) {
                        work.push_back((node, a));
                    }
                }
                RouterAction::DeliverApp { origin, app_id } => {
                    self.app_delivered += 1;
                    self.observer.on_app_deliver(node, origin, app_id, now);
                }
            }
        }
    }
}

/// Builds a [`World`] from a [`ScenarioConfig`] (topology, sources,
/// mobility), reproducibly from the config's seed.
pub struct Scenario {
    cfg: ScenarioConfig,
    positions: Vec<Vec2>,
}

impl Scenario {
    /// Lays out the topology for `cfg` (deterministic in `cfg.seed`).
    pub fn new(cfg: ScenarioConfig) -> Self {
        let dir = RngDirectory::new(cfg.seed);
        let positions = match cfg.topology {
            TopologyCfg::Grid { rows, cols, spacing } => {
                placement::grid(rows, cols, spacing, cfg.field_w, cfg.field_h)
            }
            TopologyCfg::Random { nodes } => {
                let mut rng = dir.stream("placement", 0);
                let mut draw = || rng.uniform01();
                placement::uniform_random(nodes, cfg.field_w, cfg.field_h, &mut draw)
            }
            TopologyCfg::Clustered { clusters, per_cluster, radius } => {
                let mut rng = dir.stream("placement", 0);
                let mut draw = || rng.uniform01();
                placement::clustered(
                    clusters,
                    per_cluster,
                    radius,
                    cfg.field_w,
                    cfg.field_h,
                    &mut draw,
                )
            }
        };
        Scenario { cfg, positions }
    }

    /// The configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The laid-out node positions.
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// The paper's tagged pair: the most central node S and its nearest
    /// one-hop neighbor R ("placed in the center of the grid so that the
    /// computations take into consideration two-hop interference").
    pub fn tagged_pair(&self) -> (NodeId, NodeId) {
        assert!(!self.positions.is_empty(), "non-empty topology required");
        let center = Vec2::new(self.cfg.field_w / 2.0, self.cfg.field_h / 2.0);
        // Most central node *that has a one-hop neighbor* (random layouts can
        // leave the single most central node isolated).
        let mut by_centrality: Vec<NodeId> = (0..self.positions.len()).collect();
        by_centrality.sort_by(|&a, &b| {
            self.positions[a]
                .distance_sq(center)
                .partial_cmp(&self.positions[b].distance_sq(center))
                .expect("no NaN positions")
        });
        for s in by_centrality {
            let neighbors = placement::neighbors_within(&self.positions, s, self.cfg.tx_range);
            if let Some(r) = neighbors.into_iter().min_by(|&a, &b| {
                self.positions[s]
                    .distance_sq(self.positions[a])
                    .partial_cmp(&self.positions[s].distance_sq(self.positions[b]))
                    .expect("no NaN positions")
            }) {
                return (s, r);
            }
        }
        panic!("no node in the topology has a one-hop neighbor");
    }

    /// Realizes the scenario into a [`World`]: MACs, background sources,
    /// mobility.
    ///
    /// Background sources are placed on `source_count` distinct random nodes,
    /// skipping the `reserved` ones so their traffic can be configured
    /// explicitly. This is the low-level assembly primitive: callers are
    /// expected to go through `mg-detect`'s `ScenarioBuilder`, which derives
    /// `reserved` from declared roles (attackers, monitors) and supports
    /// custom probe observers; `realize` stays public for the builder itself
    /// and for this crate's tests.
    pub fn realize<O: NetObserver>(&self, reserved: &[NodeId], observer: O) -> World<O> {
        let cfg = &self.cfg;
        let mut world = World::new(
            self.positions.clone(),
            cfg.propagation,
            cfg.tx_range,
            cfg.cs_range,
            MacTiming::paper_default(),
            cfg.seed,
            observer,
        );
        world.set_medium_index(cfg.medium_index);
        world.enable_sharding(cfg.shards, cfg.field_w);
        // Pick distinct source nodes.
        let dir = RngDirectory::new(cfg.seed);
        let mut rng = dir.stream("source-pick", 0);
        let mut candidates: Vec<NodeId> = (0..self.positions.len())
            .filter(|n| !reserved.contains(n))
            .collect();
        let mut chosen = Vec::new();
        while chosen.len() < cfg.source_count && !candidates.is_empty() {
            let i = rng.below(candidates.len() as u64) as usize;
            chosen.push(candidates.swap_remove(i));
        }
        for node in chosen {
            let source = match cfg.traffic {
                TrafficKind::Poisson => SourceCfg::poisson(node, cfg.rate_pps),
                TrafficKind::Cbr => SourceCfg::cbr(
                    node,
                    SimDuration::from_secs_f64(1.0 / cfg.rate_pps),
                ),
            };
            world.add_source(SourceCfg {
                payload_len: cfg.payload_len,
                ..source
            });
        }
        if let Some(m) = cfg.mobility {
            world.enable_mobility(m.speed_min, m.speed_max, m.pause, cfg.field_w, cfg.field_h);
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_world() -> World<()> {
        let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)];
        World::new(
            positions,
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            42,
            (),
        )
    }

    #[test]
    fn saturated_pair_delivers_steadily() {
        let mut w = two_node_world();
        w.add_source(SourceCfg::saturated(0, 1));
        w.run_until(SimTime::from_secs(1));
        let s = w.mac(0).stats();
        // One exchange ≈ backoff (~15 slots ≈ 300 µs) + RTS 496 + CTS 304 +
        // DATA 2464 + ACK 304 + 3 SIFS + DIFS ≈ 4 ms ⇒ ≈ 250 pkts/s.
        assert!(
            s.delivered > 150,
            "expected steady delivery, got {s:?}"
        );
        assert_eq!(s.delivered, w.mac(1).stats().rx_delivered);
        assert_eq!(s.dropped_retry, 0, "clean channel should never drop");
        assert_eq!(w.mac_delivered, s.delivered);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut w = two_node_world();
            w.add_source(SourceCfg::saturated(0, 1));
            w.run_until(SimTime::from_secs(1));
            (w.mac(0).stats().delivered, w.events_fired())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn three_contenders_share_roughly_fairly() {
        // Three mutually-in-range senders, each saturated to a neighbor.
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(200.0, 0.0),
            Vec2::new(100.0, 170.0),
        ];
        let mut w: World<()> = World::new(
            positions,
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            7,
            (),
        );
        w.add_source(SourceCfg::saturated(0, 1));
        w.add_source(SourceCfg::saturated(1, 2));
        w.add_source(SourceCfg::saturated(2, 0));
        w.run_until(SimTime::from_secs(5));
        let d: Vec<u64> = (0..3).map(|i| w.mac(i).stats().delivered).collect();
        let total: u64 = d.iter().sum();
        assert!(total > 300, "network starved: {d:?}");
        for &di in &d {
            let share = di as f64 / total as f64;
            assert!(
                (0.20..0.47).contains(&share),
                "unfair share {share} in {d:?}"
            );
        }
    }

    #[test]
    fn misbehaving_node_starves_honest_neighbor() {
        // The paper's premise: a back-off cheater grabs the channel.
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(200.0, 0.0),
            Vec2::new(100.0, 170.0),
        ];
        let mut w: World<()> = World::new(
            positions,
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            11,
            (),
        );
        w.set_policy(0, BackoffPolicy::Scaled { pm: 95 });
        w.add_source(SourceCfg::saturated(0, 1));
        w.add_source(SourceCfg::saturated(1, 2));
        w.add_source(SourceCfg::saturated(2, 0));
        w.run_until(SimTime::from_secs(5));
        let cheat = w.mac(0).stats().delivered;
        let honest = w.mac(1).stats().delivered + w.mac(2).stats().delivered;
        assert!(
            cheat as f64 > 1.5 * honest as f64,
            "cheater {cheat} vs honest total {honest}"
        );
    }

    #[test]
    fn poisson_sources_on_grid_deliver() {
        let cfg = ScenarioConfig {
            sim_secs: 2,
            rate_pps: 4.0,
            ..ScenarioConfig::grid_paper(3)
        };
        let scenario = Scenario::new(cfg);
        let mut w = scenario.realize(&[], ());
        w.run_until(SimTime::from_secs(2));
        let delivered: u64 = (0..w.node_count()).map(|i| w.mac(i).stats().delivered).sum();
        assert!(delivered > 100, "grid delivered only {delivered}");
        let dropped: u64 = (0..w.node_count())
            .map(|i| w.mac(i).stats().dropped_retry)
            .sum();
        // Interference-range hidden terminals (the effect the paper models)
        // cost some packets even at moderate load, but most get through.
        assert!(
            (dropped as f64) < 0.2 * delivered as f64,
            "drops {dropped} vs delivered {delivered}"
        );
    }

    #[test]
    fn routing_delivers_across_three_hops() {
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(200.0, 0.0),
            Vec2::new(400.0, 0.0),
            Vec2::new(600.0, 0.0),
        ];
        let mut w: World<()> = World::new(
            positions,
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            5,
            (),
        );
        w.enable_routing();
        w.send_routed(0, 3, 777);
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.app_delivered, 1, "routed packet must arrive");
    }

    #[test]
    fn mobility_moves_nodes_without_breaking_the_mac() {
        let cfg = ScenarioConfig {
            sim_secs: 5,
            rate_pps: 5.0,
            ..ScenarioConfig::mobile_paper(9, SimDuration::ZERO)
        };
        let scenario = Scenario::new(cfg);
        let before = scenario.positions().to_vec();
        let mut w = scenario.realize(&[], ());
        w.run_until(SimTime::from_secs(5));
        let moved = (0..w.node_count())
            .filter(|&i| w.medium().position(i).distance(before[i]) > 1.0)
            .count();
        assert!(moved > w.node_count() / 2, "only {moved} nodes moved");
    }

    #[test]
    fn sharded_world_is_byte_identical_to_serial() {
        // The in-crate smoke version of the cross-shard gate: same config,
        // Serial vs Regions(2) vs Regions(4), static and mobile — identical
        // event counts and per-node MAC statistics.
        for mobile in [false, true] {
            let run = |shards: Shards| {
                let mut cfg = ScenarioConfig {
                    sim_secs: 2,
                    rate_pps: 5.0,
                    ..ScenarioConfig::random_paper(13)
                };
                if mobile {
                    cfg.mobility = Some(crate::config::MobilityCfg::default());
                }
                cfg.shards = shards;
                let mut w = Scenario::new(cfg).realize(&[], ());
                w.run_until(SimTime::from_secs(2));
                let stats: Vec<_> = (0..w.node_count())
                    .map(|i| {
                        let s = w.mac(i).stats();
                        (s.delivered, s.dropped_retry, s.rts_sent)
                    })
                    .collect();
                (w.events_fired(), w.mac_delivered, stats)
            };
            let serial = run(Shards::Serial);
            for n in [2, 4] {
                assert_eq!(serial, run(Shards::Regions(n)), "Regions({n}), mobile={mobile}");
            }
        }
    }

    #[test]
    fn shard_stats_reports_engine_diagnostics() {
        let cfg = ScenarioConfig {
            sim_secs: 1,
            rate_pps: 5.0,
            shards: Shards::Regions(2),
            ..ScenarioConfig::grid_paper(3)
        };
        let mut w = Scenario::new(cfg).realize(&[], ());
        assert!(w.shard_stats().is_some());
        w.run_until(SimTime::from_secs(1));
        let s = w.shard_stats().expect("sharded engine active");
        assert_eq!(s.regions, 2);
        assert!(s.barriers > 0, "a 1 s run must cross epoch barriers");
        // Serial path reports nothing.
        let cfg = ScenarioConfig { shards: Shards::Serial, ..cfg };
        assert!(Scenario::new(cfg).realize(&[], ()).shard_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "before any event is scheduled")]
    fn enable_sharding_after_sources_panics() {
        let mut w = two_node_world();
        w.add_source(SourceCfg::saturated(0, 1));
        w.enable_sharding(Shards::Regions(2), 1000.0);
    }

    #[test]
    fn tagged_pair_is_central_and_adjacent() {
        let scenario = Scenario::new(ScenarioConfig::grid_paper(1));
        let (s, r) = scenario.tagged_pair();
        let d = scenario.positions()[s].distance(scenario.positions()[r]);
        assert!((d - 240.0).abs() < 1e-6, "pair distance {d}");
        let center = Vec2::new(1500.0, 1500.0);
        assert!(scenario.positions()[s].distance(center) < 400.0);
    }
}

#[cfg(test)]
mod basic_access_tests {
    use super::*;

    #[test]
    fn basic_access_pair_delivers_without_rts() {
        let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)];
        let mut w: World<()> = World::new(
            positions,
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            71,
            (),
        );
        w.set_rts_threshold(0, u32::MAX);
        w.add_source(SourceCfg::saturated(0, 1));
        w.run_until(SimTime::from_secs(1));
        let s = w.mac(0).stats();
        assert_eq!(s.rts_sent, 0, "basic access never sends RTS");
        assert!(s.delivered > 150, "{s:?}");
        assert_eq!(s.delivered, w.mac(1).stats().rx_delivered);
        // Basic access skips RTS+CTS+2·SIFS per packet: strictly faster on a
        // clean channel than the four-way handshake.
        let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)];
        let mut w4: World<()> = World::new(
            positions,
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            71,
            (),
        );
        w4.add_source(SourceCfg::saturated(0, 1));
        w4.run_until(SimTime::from_secs(1));
        assert!(s.delivered > w4.mac(0).stats().delivered, "basic should beat RTS/CTS on a clean link");
    }
}
