//! # mg-net — the MANET network layer and simulation world
//!
//! Everything above the MAC and below the experiments:
//!
//! * [`World`] — the simulation driver: owns the event queue (`mg-sim`), the
//!   shared medium (`mg-phy`) and one [`mg_dcf::DcfMac`] per node, executes
//!   MAC actions, routes receptions, and feeds a pluggable [`NetObserver`]
//!   (the detection framework of `mg-detect` is one such observer).
//! * [`TrafficModel`] / [`SourceCfg`] — Poisson, CBR and saturated traffic
//!   generators (the paper evaluates Poisson and CBR and finds them
//!   equivalent at equal intensity).
//! * [`RandomWaypoint`] — the paper's mobility model (0–20 m/s uniform,
//!   configurable pause times, 3000 m × 3000 m field).
//! * [`AodvLite`] — a compact AODV (RREQ/RREP + hop-count routes) for the
//!   multi-hop example; the paper's Table 1 lists AODV as the routing
//!   protocol even though its measured flows are single-hop.
//! * [`ScenarioConfig`] — a serializable description of a full experiment
//!   (Table 1 defaults) and [`Scenario`] — the builder that turns it into a
//!   ready-to-run [`World`].

#![warn(missing_docs)]

mod aodv;
mod config;
mod mobility;
mod observers;
mod traffic;
mod world;

pub use aodv::{AodvLite, NetMsg, RouteEntry, RouterAction};
pub use config::{MobilityCfg, ScenarioConfig, Shards, TopologyCfg, TrafficKind};
pub use mobility::RandomWaypoint;
pub use observers::{Fanout, MetricsObserver, TraceEntry, TraceObserver};
pub use traffic::{DstPolicy, SourceCfg, TrafficModel};
pub use world::{NetObserver, Scenario, ShardStats, World};

/// Index of a node in the simulation.
pub type NodeId = usize;
