//! The random waypoint mobility model (Table 1: 0–20 m/s, pause times
//! {0, 50, 100, 200, 300} s, 3000 m × 3000 m field).

use mg_geom::Vec2;
use mg_sim::rng::Rng;
use mg_sim::{SimDuration, SimTime};

/// Per-node random-waypoint state machine.
///
/// The world ticks it periodically ([`RandomWaypoint::advance`]); the model
/// alternates between pausing at a waypoint and moving toward the next one
/// at a uniformly drawn speed.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    field_w: f64,
    field_h: f64,
    speed_min: f64,
    speed_max: f64,
    pause: SimDuration,
    pos: Vec2,
    phase: Phase,
}

#[derive(Clone, Debug)]
enum Phase {
    Paused { until: SimTime },
    Moving { target: Vec2, speed: f64 },
}

impl RandomWaypoint {
    /// Creates a walker starting at `pos`, initially paused until `t = 0`
    /// (i.e. it picks its first waypoint on the first tick).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ speed_min ≤ speed_max`, `speed_max > 0` and the
    /// field has positive area.
    pub fn new(
        pos: Vec2,
        field_w: f64,
        field_h: f64,
        speed_min: f64,
        speed_max: f64,
        pause: SimDuration,
    ) -> Self {
        assert!(
            speed_min >= 0.0 && speed_min <= speed_max && speed_max > 0.0,
            "need 0 ≤ speed_min ≤ speed_max with speed_max > 0"
        );
        assert!(field_w > 0.0 && field_h > 0.0, "field must have area");
        RandomWaypoint {
            field_w,
            field_h,
            speed_min,
            speed_max,
            pause,
            pos,
            phase: Phase::Paused {
                until: SimTime::ZERO,
            },
        }
    }

    /// Current position.
    pub fn position(&self) -> Vec2 {
        self.pos
    }

    /// Advances the walker from its state at `now - dt` to `now`, returning
    /// the new position. `rng` supplies waypoint/speed draws.
    pub fn advance<R: Rng>(&mut self, now: SimTime, dt: SimDuration, rng: &mut R) -> Vec2 {
        let mut remaining = dt.as_secs_f64();
        while remaining > 1e-12 {
            match self.phase {
                Phase::Paused { until } => {
                    if now < until {
                        break; // still pausing through this whole tick
                    }
                    // Draw a fresh waypoint and speed; min speed clamped away
                    // from zero to avoid the well-known RWP speed-decay trap.
                    let target = Vec2::new(
                        rng.uniform01() * self.field_w,
                        rng.uniform01() * self.field_h,
                    );
                    let speed = rng.uniform(self.speed_min.max(0.1), self.speed_max);
                    self.phase = Phase::Moving { target, speed };
                }
                Phase::Moving { target, speed } => {
                    let to_go = self.pos.distance(target);
                    let step = speed * remaining;
                    if step >= to_go {
                        // Arrive and start pausing.
                        self.pos = target;
                        let used = if speed > 0.0 { to_go / speed } else { 0.0 };
                        remaining -= used;
                        self.phase = Phase::Paused {
                            until: now + self.pause,
                        };
                        if self.pause > SimDuration::ZERO {
                            break;
                        }
                    } else {
                        let dir = (target - self.pos)
                            .normalized()
                            .expect("target != pos since step < to_go");
                        self.pos += dir * step;
                        remaining = 0.0;
                    }
                }
            }
        }
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sim::rng::Xoshiro256;

    fn walker(pause_s: u64) -> RandomWaypoint {
        RandomWaypoint::new(
            Vec2::new(1500.0, 1500.0),
            3000.0,
            3000.0,
            0.0,
            20.0,
            SimDuration::from_secs(pause_s),
        )
    }

    #[test]
    fn stays_in_field() {
        let mut w = walker(0);
        let mut rng = Xoshiro256::new(9);
        let dt = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO;
        for _ in 0..50_000 {
            t += dt;
            let p = w.advance(t, dt, &mut rng);
            assert!((0.0..=3000.0).contains(&p.x), "{p:?}");
            assert!((0.0..=3000.0).contains(&p.y), "{p:?}");
        }
    }

    #[test]
    fn moves_at_bounded_speed() {
        let mut w = walker(0);
        let mut rng = Xoshiro256::new(10);
        let dt = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO;
        let mut prev = w.position();
        for _ in 0..10_000 {
            t += dt;
            let p = w.advance(t, dt, &mut rng);
            let dist = prev.distance(p);
            assert!(dist <= 20.0 * 0.1 + 1e-9, "moved {dist} m in 100 ms");
            prev = p;
        }
    }

    #[test]
    fn actually_travels() {
        let mut w = walker(0);
        let mut rng = Xoshiro256::new(11);
        let start = w.position();
        let dt = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO;
        let mut max_dist: f64 = 0.0;
        for _ in 0..20_000 {
            t += dt;
            max_dist = max_dist.max(start.distance(w.advance(t, dt, &mut rng)));
        }
        assert!(max_dist > 500.0, "walker barely moved: {max_dist} m");
    }

    #[test]
    fn pause_times_hold_position() {
        let mut w = walker(300);
        let mut rng = Xoshiro256::new(12);
        let dt = SimDuration::from_millis(100);
        // First tick at t=dt: pause (until t=0) has expired, so it starts
        // moving; let it reach a waypoint by running a long time, then check
        // that a 300 s pause freezes it.
        let mut t = SimTime::ZERO;
        let mut last = w.position();
        let mut paused_ticks = 0u32;
        for _ in 0..600_000 {
            t += dt;
            let p = w.advance(t, dt, &mut rng);
            if p == last {
                paused_ticks += 1;
            } else {
                paused_ticks = 0;
            }
            last = p;
            if paused_ticks > 100 {
                return; // observed a genuine pause
            }
        }
        panic!("never observed a pause with pause time 300 s");
    }

    #[test]
    #[should_panic(expected = "speed_max > 0")]
    fn zero_speeds_rejected() {
        RandomWaypoint::new(Vec2::ZERO, 10.0, 10.0, 0.0, 0.0, SimDuration::ZERO);
    }
}
