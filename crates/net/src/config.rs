//! Serializable experiment configuration — the paper's Table 1 as a struct.

use mg_phy::{MediumIndex, PropagationModel};
use mg_sim::SimDuration;

/// Node layout.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TopologyCfg {
    /// Regular grid (paper: 7 rows × 8 columns, 240 m spacing).
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Neighbor spacing in meters.
        spacing: f64,
    },
    /// Uniform random placement (paper: 112 nodes for strong connectivity).
    Random {
        /// Number of nodes.
        nodes: usize,
    },
    /// Clustered placement: dense clumps of nodes around random centers —
    /// the hot-spot regime (many contenders in one sensing disk) that
    /// scale studies of 802.11 backoff behavior evaluate.
    Clustered {
        /// Number of clusters.
        clusters: usize,
        /// Nodes per cluster.
        per_cluster: usize,
        /// Cluster radius, m.
        radius: f64,
    },
}

impl TopologyCfg {
    /// Total node count.
    pub fn node_count(&self) -> usize {
        match *self {
            TopologyCfg::Grid { rows, cols, .. } => rows * cols,
            TopologyCfg::Random { nodes } => nodes,
            TopologyCfg::Clustered { clusters, per_cluster, .. } => clusters * per_cluster,
        }
    }
}

/// How the world's event loop is partitioned across spatial regions.
///
/// `Serial` is the classic single-heap scheduler; `Regions(n)` cuts the
/// field into `n` vertical slabs, each with its own event lane, advanced in
/// lockstep epochs (conservative parallel DES). Results are **byte-identical**
/// either way — proven by `crates/sim/tests/sharded_diff.rs` and the
/// cross-shard gate in `tests/trace_determinism.rs` — so the choice is pure
/// performance tuning.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Shards {
    /// One global event heap (the reference path).
    #[default]
    Serial,
    /// `n ≥ 2` region slabs with per-region event lanes.
    Regions(u32),
}

impl Shards {
    /// Parses `"serial"` or a shard count: `"1"` is `Serial`, `n ≥ 2` is
    /// `Regions(n)`, anything else (including `"0"`) is an error.
    pub fn parse(s: &str) -> Result<Self, String> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("serial") {
            return Ok(Shards::Serial);
        }
        match t.parse::<u32>() {
            Ok(1) => Ok(Shards::Serial),
            Ok(n) if n >= 2 => Ok(Shards::Regions(n)),
            _ => Err(format!("invalid shard count {s:?}: expected serial or a count >= 1")),
        }
    }

    /// Number of event lanes this setting produces.
    pub fn region_count(&self) -> u32 {
        match *self {
            Shards::Serial => 1,
            Shards::Regions(n) => n,
        }
    }
}

impl std::fmt::Display for Shards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Shards::Serial => write!(f, "serial"),
            Shards::Regions(n) => write!(f, "{n}"),
        }
    }
}

/// Which of the paper's two traffic models background sources use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficKind {
    /// Poisson arrivals, fresh random neighbor per packet.
    Poisson,
    /// CBR stream to a sticky random neighbor.
    Cbr,
}

/// Random-waypoint mobility parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MobilityCfg {
    /// Minimum speed, m/s (paper: 0).
    pub speed_min: f64,
    /// Maximum speed, m/s (paper: 20).
    pub speed_max: f64,
    /// Pause time at each waypoint (paper: {0, 50, 100, 200, 300} s).
    pub pause: SimDuration,
}

impl Default for MobilityCfg {
    fn default() -> Self {
        MobilityCfg {
            speed_min: 0.0,
            speed_max: 20.0,
            pause: SimDuration::ZERO,
        }
    }
}

/// A complete scenario description (Table 1 of the paper).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScenarioConfig {
    /// Node layout.
    pub topology: TopologyCfg,
    /// Field width, m (Table 1: 3000).
    pub field_w: f64,
    /// Field height, m (Table 1: 3000).
    pub field_h: f64,
    /// Transmission range, m (Table 1: 250).
    pub tx_range: f64,
    /// Sensing / interference range, m (Table 1: 550).
    pub cs_range: f64,
    /// Channel model (paper: shadowing with β = 2, σ = 0 ⇒ free space).
    pub propagation: PropagationModel,
    /// Background traffic model.
    pub traffic: TrafficKind,
    /// Number of background source–destination pairs (paper: 30).
    pub source_count: usize,
    /// Mean per-source packet rate, packets/s — the offered-load knob.
    pub rate_pps: f64,
    /// Application payload per packet, bytes (Table 1: 512).
    pub payload_len: u16,
    /// Interface queue capacity, packets (Table 1: 50).
    pub queue_cap: usize,
    /// Mobility, if any.
    pub mobility: Option<MobilityCfg>,
    /// Simulated duration, seconds (Table 1: 300).
    pub sim_secs: u64,
    /// Run seed — every random draw in the run derives from it.
    pub seed: u64,
    /// Spatial-index strategy of the medium. Byte-identical results either
    /// way; `Grid` makes big worlds affordable (see `bench_world_scale`).
    pub medium_index: MediumIndex,
    /// Event-loop sharding: serial heap or region-sharded lanes. Byte-
    /// identical results either way (cross-shard gate in
    /// `tests/trace_determinism.rs`).
    pub shards: Shards,
}

impl ScenarioConfig {
    /// The paper's first experimental setup: static 7×8 grid, Poisson
    /// traffic, 30 pairs.
    pub fn grid_paper(seed: u64) -> Self {
        ScenarioConfig {
            topology: TopologyCfg::Grid {
                rows: 7,
                cols: 8,
                spacing: 240.0,
            },
            field_w: 3000.0,
            field_h: 3000.0,
            tx_range: 250.0,
            cs_range: 550.0,
            propagation: PropagationModel::shadowing(2.0, 0.0),
            traffic: TrafficKind::Poisson,
            source_count: 30,
            rate_pps: 20.0,
            payload_len: 512,
            queue_cap: 50,
            mobility: None,
            sim_secs: 300,
            seed,
            medium_index: MediumIndex::default(),
            shards: Shards::default(),
        }
    }

    /// The paper's second setup: 112 random nodes, CBR traffic.
    pub fn random_paper(seed: u64) -> Self {
        ScenarioConfig {
            topology: TopologyCfg::Random { nodes: 112 },
            traffic: TrafficKind::Cbr,
            ..Self::grid_paper(seed)
        }
    }

    /// The mobile setup of Figures 5(d)/6(b): random nodes + random waypoint.
    pub fn mobile_paper(seed: u64, pause: SimDuration) -> Self {
        ScenarioConfig {
            mobility: Some(MobilityCfg {
                speed_min: 0.0,
                speed_max: 20.0,
                pause,
            }),
            ..Self::random_paper(seed)
        }
    }

    /// A thousand-node world at the paper's node density: `nodes` random
    /// nodes on a field scaled so the per-disk population matches the
    /// paper's 112-node 3000 m × 3000 m layout. Source pairs scale with
    /// the node count (the paper's 30 pairs ≈ 27% of nodes). This is the
    /// regime the spatial index exists for.
    pub fn large_world(seed: u64, nodes: usize) -> Self {
        let side = 3000.0 * (nodes as f64 / 112.0).sqrt();
        ScenarioConfig {
            topology: TopologyCfg::Random { nodes },
            field_w: side,
            field_h: side,
            source_count: (nodes * 30).div_ceil(112),
            ..Self::random_paper(seed)
        }
    }

    /// Table 1 as printable rows (parameter, value).
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        let topo = match self.topology {
            TopologyCfg::Grid { rows, cols, spacing } => {
                format!("Grid {rows}x{cols}, {spacing} m spacing")
            }
            TopologyCfg::Random { nodes } => format!("Random, {nodes} nodes"),
            TopologyCfg::Clustered { clusters, per_cluster, radius } => {
                format!("Clustered, {clusters} x {per_cluster} nodes, r = {radius} m")
            }
        };
        vec![
            ("Topology".into(), topo),
            (
                "Topology area".into(),
                format!("{} m x {} m", self.field_w, self.field_h),
            ),
            ("Transmission range".into(), format!("{} m", self.tx_range)),
            (
                "Sensing/interference range".into(),
                format!("{} m", self.cs_range),
            ),
            (
                "Mobility".into(),
                match self.mobility {
                    None => "none (static)".into(),
                    Some(m) => format!(
                        "random waypoint, {}-{} m/s, pause {}",
                        m.speed_min, m.speed_max, m.pause
                    ),
                },
            ),
            (
                "Traffic model".into(),
                format!("{:?}, {} pairs, {} pkt/s", self.traffic, self.source_count, self.rate_pps),
            ),
            ("Queue length".into(), format!("{}", self.queue_cap)),
            ("Packet size".into(), format!("{} bytes", self.payload_len)),
            ("Simulation time".into(), format!("{} s", self.sim_secs)),
            (
                "Physical, MAC layers".into(),
                "IEEE 802.11 DCF (DSSS timing)".into(),
            ),
            ("Routing protocol".into(), "AODV-lite".into()),
            ("Transport".into(), "UDP-like (no retransmission above MAC)".into()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = ScenarioConfig::grid_paper(1);
        assert_eq!(c.topology.node_count(), 56);
        assert_eq!(c.tx_range, 250.0);
        assert_eq!(c.cs_range, 550.0);
        assert_eq!(c.payload_len, 512);
        assert_eq!(c.queue_cap, 50);
        assert_eq!(c.sim_secs, 300);
        let r = ScenarioConfig::random_paper(1);
        assert_eq!(r.topology.node_count(), 112);
        assert_eq!(r.traffic, TrafficKind::Cbr);
    }

    #[test]
    fn large_world_preserves_density() {
        let small = ScenarioConfig::random_paper(1);
        let big = ScenarioConfig::large_world(1, 2000);
        assert_eq!(big.topology.node_count(), 2000);
        let density = |c: &ScenarioConfig| {
            c.topology.node_count() as f64 / (c.field_w * c.field_h)
        };
        assert!(
            (density(&small) - density(&big)).abs() / density(&small) < 0.01,
            "density drifts: {} vs {}",
            density(&small),
            density(&big)
        );
        // Sources scale proportionally (paper: 30 of 112).
        assert_eq!(big.source_count, 536);
        assert_eq!(big.medium_index, MediumIndex::Grid);
    }

    #[test]
    fn clustered_topology_counts_nodes() {
        let t = TopologyCfg::Clustered { clusters: 8, per_cluster: 60, radius: 300.0 };
        assert_eq!(t.node_count(), 480);
    }

    #[test]
    fn mobile_preset_sets_waypoint_model() {
        let c = ScenarioConfig::mobile_paper(7, SimDuration::from_secs(50));
        let m = c.mobility.expect("mobile preset has mobility");
        assert_eq!(m.speed_max, 20.0);
        assert_eq!(m.pause, SimDuration::from_secs(50));
        assert_eq!(c.topology.node_count(), 112);
    }

    #[test]
    fn shards_parse_is_strict() {
        assert_eq!(Shards::parse("serial").unwrap(), Shards::Serial);
        assert_eq!(Shards::parse(" Serial ").unwrap(), Shards::Serial);
        assert_eq!(Shards::parse("1").unwrap(), Shards::Serial);
        assert_eq!(Shards::parse("2").unwrap(), Shards::Regions(2));
        assert_eq!(Shards::parse("16").unwrap(), Shards::Regions(16));
        for bad in ["0", "-1", "", "two", "4.5", "1e3"] {
            assert!(Shards::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(Shards::default(), Shards::Serial);
        assert_eq!(Shards::Serial.region_count(), 1);
        assert_eq!(Shards::Regions(4).region_count(), 4);
        assert_eq!(Shards::Regions(4).to_string(), "4");
        assert_eq!(Shards::Serial.to_string(), "serial");
    }

    #[test]
    fn table1_covers_key_parameters() {
        let rows = ScenarioConfig::grid_paper(1).table1_rows();
        let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        for expect in [
            "Topology",
            "Transmission range",
            "Sensing/interference range",
            "Queue length",
            "Packet size",
            "Simulation time",
        ] {
            assert!(keys.contains(&expect), "missing {expect}");
        }
    }
}
