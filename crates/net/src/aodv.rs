//! AODV-lite: on-demand hop-count routing.
//!
//! The paper's Table 1 lists AODV as the routing protocol (its measured
//! flows are single-hop, so routing never bends the MAC results); we provide
//! a compact but functional AODV so the multi-hop example and tests exercise
//! realistic broadcast (RREQ) traffic through the DCF:
//!
//! * **RREQ** — flooded with duplicate suppression and a TTL; every hop
//!   learns the reverse route to the originator.
//! * **RREP** — unicast back along the reverse route; every hop learns the
//!   forward route to the destination.
//! * **DATA** — unicast hop-by-hop along learned routes; queued at the
//!   originator until a route exists.
//!
//! Sequence-number freshness, route expiry and RERR are intentionally out of
//! scope (lite).

use crate::NodeId;
use std::collections::{HashMap, HashSet};

/// Maximum hops an RREQ may travel.
pub const RREQ_TTL: u8 = 16;

/// A routing-layer message carried inside a MAC SDU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetMsg {
    /// Route request, flooded.
    Rreq {
        /// Node looking for a route.
        origin: NodeId,
        /// Node being looked for.
        target: NodeId,
        /// Originator-local request id (for duplicate suppression).
        id: u32,
        /// Hops travelled so far.
        hops: u8,
    },
    /// Route reply, unicast back toward the RREQ originator.
    Rrep {
        /// The node the route leads to (the RREQ's target).
        dest: NodeId,
        /// The RREQ originator the reply travels toward.
        origin: NodeId,
        /// Hops from `dest` so far.
        hops: u8,
    },
    /// Application data, unicast hop-by-hop.
    Data {
        /// Originating node.
        origin: NodeId,
        /// Final destination.
        target: NodeId,
        /// Application-level packet id.
        app_id: u64,
    },
}

/// One forwarding-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouteEntry {
    /// Neighbor to forward through.
    pub next_hop: NodeId,
    /// Advertised distance in hops.
    pub hops: u8,
}

/// What the router wants done.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouterAction {
    /// Broadcast `msg` from this node.
    Broadcast(NetMsg),
    /// Unicast `msg` to the given neighbor.
    Unicast(NodeId, NetMsg),
    /// `app_id` from `origin` reached us — hand it to the application.
    DeliverApp {
        /// Originating node.
        origin: NodeId,
        /// Application packet id.
        app_id: u64,
    },
}

/// Per-node AODV-lite state machine.
#[derive(Clone, Debug)]
pub struct AodvLite {
    node: NodeId,
    routes: HashMap<NodeId, RouteEntry>,
    seen_rreq: HashSet<(NodeId, u32)>,
    /// Data waiting for a route, keyed by target.
    pending: Vec<(NodeId, u64)>,
    next_rreq_id: u32,
    /// Data packets dropped for lack of a route at a forwarding hop.
    pub dropped_no_route: u64,
}

impl AodvLite {
    /// Creates the router for `node`.
    pub fn new(node: NodeId) -> Self {
        AodvLite {
            node,
            routes: HashMap::new(),
            seen_rreq: HashSet::new(),
            pending: Vec::new(),
            next_rreq_id: 0,
            dropped_no_route: 0,
        }
    }

    /// Current route toward `dst`, if known.
    pub fn route_to(&self, dst: NodeId) -> Option<RouteEntry> {
        self.routes.get(&dst).copied()
    }

    /// Ask the router to deliver `app_id` to `target`. Sends data directly
    /// when a route exists; otherwise queues it and floods an RREQ.
    pub fn send(&mut self, target: NodeId, app_id: u64) -> Vec<RouterAction> {
        if target == self.node {
            return vec![RouterAction::DeliverApp {
                origin: self.node,
                app_id,
            }];
        }
        if let Some(route) = self.routes.get(&target) {
            return vec![RouterAction::Unicast(
                route.next_hop,
                NetMsg::Data {
                    origin: self.node,
                    target,
                    app_id,
                },
            )];
        }
        self.pending.push((target, app_id));
        let id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.seen_rreq.insert((self.node, id));
        vec![RouterAction::Broadcast(NetMsg::Rreq {
            origin: self.node,
            target,
            id,
            hops: 0,
        })]
    }

    /// Processes a routing message received from MAC neighbor `from`.
    pub fn on_receive(&mut self, from: NodeId, msg: NetMsg) -> Vec<RouterAction> {
        match msg {
            NetMsg::Rreq {
                origin,
                target,
                id,
                hops,
            } => self.on_rreq(from, origin, target, id, hops),
            NetMsg::Rrep { dest, origin, hops } => self.on_rrep(from, dest, origin, hops),
            NetMsg::Data {
                origin,
                target,
                app_id,
            } => self.on_data(origin, target, app_id),
        }
    }

    fn learn(&mut self, dst: NodeId, next_hop: NodeId, hops: u8) {
        if dst == self.node {
            return;
        }
        let better = self.routes.get(&dst).map(|r| hops < r.hops).unwrap_or(true);
        if better {
            self.routes.insert(dst, RouteEntry { next_hop, hops });
        }
    }

    fn on_rreq(
        &mut self,
        from: NodeId,
        origin: NodeId,
        target: NodeId,
        id: u32,
        hops: u8,
    ) -> Vec<RouterAction> {
        if !self.seen_rreq.insert((origin, id)) {
            return Vec::new(); // duplicate
        }
        self.learn(origin, from, hops + 1);
        if self.node == target {
            // We are the destination: reply along the reverse route.
            return vec![RouterAction::Unicast(
                from,
                NetMsg::Rrep {
                    dest: self.node,
                    origin,
                    hops: 0,
                },
            )];
        }
        if hops + 1 >= RREQ_TTL {
            return Vec::new();
        }
        vec![RouterAction::Broadcast(NetMsg::Rreq {
            origin,
            target,
            id,
            hops: hops + 1,
        })]
    }

    fn on_rrep(&mut self, from: NodeId, dest: NodeId, origin: NodeId, hops: u8) -> Vec<RouterAction> {
        self.learn(dest, from, hops + 1);
        if self.node == origin {
            // Route established: flush everything waiting for `dest`.
            let mut out = Vec::new();
            let pending = std::mem::take(&mut self.pending);
            for (target, app_id) in pending {
                if target == dest {
                    let next = self.routes[&dest].next_hop;
                    out.push(RouterAction::Unicast(
                        next,
                        NetMsg::Data {
                            origin: self.node,
                            target,
                            app_id,
                        },
                    ));
                } else {
                    self.pending.push((target, app_id));
                }
            }
            return out;
        }
        // Forward toward the originator along the reverse route.
        match self.routes.get(&origin) {
            Some(rev) => vec![RouterAction::Unicast(
                rev.next_hop,
                NetMsg::Rrep {
                    dest,
                    origin,
                    hops: hops + 1,
                },
            )],
            None => Vec::new(), // reverse route evaporated; give up
        }
    }

    fn on_data(&mut self, origin: NodeId, target: NodeId, app_id: u64) -> Vec<RouterAction> {
        if self.node == target {
            return vec![RouterAction::DeliverApp { origin, app_id }];
        }
        match self.routes.get(&target) {
            Some(route) => vec![RouterAction::Unicast(
                route.next_hop,
                NetMsg::Data {
                    origin,
                    target,
                    app_id,
                },
            )],
            None => {
                self.dropped_no_route += 1;
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a line topology 0–1–2–3 purely through the router logic
    /// (broadcasts reach immediate neighbors only).
    fn deliver_line(routers: &mut [AodvLite], actions: Vec<(NodeId, RouterAction)>) -> Vec<(NodeId, u64)> {
        let n = routers.len();
        let mut work = std::collections::VecDeque::from(actions);
        let mut delivered = Vec::new();
        while let Some((at, action)) = work.pop_front() {
            match action {
                RouterAction::Broadcast(msg) => {
                    for nb in [at.wrapping_sub(1), at + 1] {
                        if nb < n && nb != at {
                            for a in routers[nb].on_receive(at, msg) {
                                work.push_back((nb, a));
                            }
                        }
                    }
                }
                RouterAction::Unicast(next, msg) => {
                    assert!(next < n && next.abs_diff(at) == 1, "non-neighbor unicast");
                    for a in routers[next].on_receive(at, msg) {
                        work.push_back((next, a));
                    }
                }
                RouterAction::DeliverApp { origin, app_id } => {
                    delivered.push((origin, app_id));
                    let _ = at;
                }
            }
        }
        delivered
    }

    #[test]
    fn discovers_multi_hop_route_and_delivers() {
        let mut routers: Vec<AodvLite> = (0..4).map(AodvLite::new).collect();
        let first = routers[0]
            .send(3, 99)
            .into_iter()
            .map(|a| (0usize, a))
            .collect();
        let delivered = deliver_line(&mut routers, first);
        assert_eq!(delivered, vec![(0, 99)]);
        // Forward routes learned along the path.
        assert_eq!(routers[0].route_to(3).unwrap().next_hop, 1);
        assert_eq!(routers[1].route_to(3).unwrap().next_hop, 2);
        // Reverse routes too.
        assert_eq!(routers[3].route_to(0).unwrap().next_hop, 2);
        assert_eq!(routers[3].route_to(0).unwrap().hops, 3);
    }

    #[test]
    fn second_packet_uses_cached_route() {
        let mut routers: Vec<AodvLite> = (0..4).map(AodvLite::new).collect();
        let first = routers[0].send(3, 1).into_iter().map(|a| (0usize, a)).collect();
        deliver_line(&mut routers, first);
        // Now a route exists: send() must go straight to Unicast(data).
        let second = routers[0].send(3, 2);
        assert_eq!(second.len(), 1);
        assert!(matches!(
            second[0],
            RouterAction::Unicast(1, NetMsg::Data { app_id: 2, .. })
        ));
    }

    #[test]
    fn duplicate_rreq_suppressed() {
        let mut r = AodvLite::new(1);
        let rreq = NetMsg::Rreq {
            origin: 0,
            target: 9,
            id: 5,
            hops: 0,
        };
        let a1 = r.on_receive(0, rreq);
        assert_eq!(a1.len(), 1, "first copy rebroadcast");
        let a2 = r.on_receive(0, rreq);
        assert!(a2.is_empty(), "duplicate dropped");
    }

    #[test]
    fn ttl_stops_flood() {
        let mut r = AodvLite::new(1);
        let rreq = NetMsg::Rreq {
            origin: 0,
            target: 9,
            id: 5,
            hops: RREQ_TTL - 1,
        };
        assert!(r.on_receive(0, rreq).is_empty());
    }

    #[test]
    fn data_without_route_is_dropped_and_counted() {
        let mut r = AodvLite::new(1);
        let out = r.on_receive(
            0,
            NetMsg::Data {
                origin: 0,
                target: 9,
                app_id: 7,
            },
        );
        assert!(out.is_empty());
        assert_eq!(r.dropped_no_route, 1);
    }

    #[test]
    fn send_to_self_delivers_locally() {
        let mut r = AodvLite::new(4);
        let out = r.send(4, 11);
        assert_eq!(
            out,
            vec![RouterAction::DeliverApp {
                origin: 4,
                app_id: 11
            }]
        );
    }

    #[test]
    fn shorter_route_replaces_longer() {
        let mut r = AodvLite::new(5);
        r.learn(9, 1, 4);
        r.learn(9, 2, 2);
        assert_eq!(r.route_to(9).unwrap(), RouteEntry { next_hop: 2, hops: 2 });
        // Worse route does not replace.
        r.learn(9, 3, 7);
        assert_eq!(r.route_to(9).unwrap().next_hop, 2);
    }
}
