//! Traffic generation: the paper's Poisson and CBR models, plus a saturated
//! source for the tagged (attacker) node.

use crate::NodeId;
use mg_sim::rng::Rng;
use mg_sim::SimDuration;

/// Packet arrival process of one source.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrafficModel {
    /// Poisson arrivals at `rate_pps` packets per second; each packet is
    /// destined per the source's [`DstPolicy`].
    Poisson {
        /// Mean packets per second.
        rate_pps: f64,
    },
    /// Constant-bit-rate stream: one packet every `interval`.
    Cbr {
        /// Inter-packet gap.
        interval: SimDuration,
    },
    /// Always-backlogged: the MAC queue is topped up whenever a packet
    /// completes, so the node contends for every transmission opportunity.
    /// This models the paper's attacker, which is trying to *grab* bandwidth.
    Saturated,
}

impl TrafficModel {
    /// Time until the next arrival, or `None` for [`TrafficModel::Saturated`]
    /// (which is driven by packet completions, not a clock).
    pub fn next_gap<R: Rng>(&self, rng: &mut R) -> Option<SimDuration> {
        match *self {
            TrafficModel::Poisson { rate_pps } => {
                assert!(rate_pps > 0.0, "poisson rate must be positive");
                Some(SimDuration::from_secs_f64(rng.exponential(rate_pps)))
            }
            TrafficModel::Cbr { interval } => {
                assert!(!interval.is_zero(), "CBR interval must be positive");
                Some(interval)
            }
            TrafficModel::Saturated => None,
        }
    }

    /// A randomized initial phase so simultaneous CBR sources do not
    /// synchronize (first arrival uniform in one period).
    pub fn initial_gap<R: Rng>(&self, rng: &mut R) -> Option<SimDuration> {
        match *self {
            TrafficModel::Poisson { .. } => self.next_gap(rng),
            TrafficModel::Cbr { interval } => Some(SimDuration::from_nanos(
                rng.below(interval.as_nanos().max(1)),
            )),
            TrafficModel::Saturated => None,
        }
    }
}

/// How a source chooses each packet's destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DstPolicy {
    /// Always the given node (the paper's tagged S→R pair).
    Fixed(NodeId),
    /// One one-hop neighbor chosen at stream start and kept while it stays
    /// in range (the paper's CBR setup); re-chosen if it drifts out of range.
    StickyRandomNeighbor,
    /// A fresh one-hop neighbor per packet (the paper's Poisson setup).
    PerPacketRandomNeighbor,
}

/// One traffic source.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SourceCfg {
    /// The transmitting node.
    pub node: NodeId,
    /// The arrival process.
    pub model: TrafficModel,
    /// Destination selection.
    pub dst: DstPolicy,
    /// Application payload per packet (Table 1: 512 bytes).
    pub payload_len: u16,
}

impl SourceCfg {
    /// A Poisson source with per-packet random neighbors (paper's first
    /// traffic setup).
    pub fn poisson(node: NodeId, rate_pps: f64) -> Self {
        SourceCfg {
            node,
            model: TrafficModel::Poisson { rate_pps },
            dst: DstPolicy::PerPacketRandomNeighbor,
            payload_len: 512,
        }
    }

    /// A CBR stream to one sticky neighbor (paper's second traffic setup).
    pub fn cbr(node: NodeId, interval: SimDuration) -> Self {
        SourceCfg {
            node,
            model: TrafficModel::Cbr { interval },
            dst: DstPolicy::StickyRandomNeighbor,
            payload_len: 512,
        }
    }

    /// A saturated stream to a fixed destination (the tagged S→R flow).
    pub fn saturated(node: NodeId, dst: NodeId) -> Self {
        SourceCfg {
            node,
            model: TrafficModel::Saturated,
            dst: DstPolicy::Fixed(dst),
            payload_len: 512,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sim::rng::Xoshiro256;

    #[test]
    fn poisson_gaps_have_right_mean() {
        let m = TrafficModel::Poisson { rate_pps: 100.0 };
        let mut rng = Xoshiro256::new(3);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| m.next_gap(&mut rng).unwrap().as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() < 0.0005, "mean gap {mean}");
    }

    #[test]
    fn cbr_gaps_are_constant_with_random_phase() {
        let m = TrafficModel::Cbr {
            interval: SimDuration::from_millis(20),
        };
        let mut rng = Xoshiro256::new(4);
        assert_eq!(m.next_gap(&mut rng), Some(SimDuration::from_millis(20)));
        let phase = m.initial_gap(&mut rng).unwrap();
        assert!(phase < SimDuration::from_millis(20));
    }

    #[test]
    fn saturated_has_no_clock() {
        let mut rng = Xoshiro256::new(5);
        assert_eq!(TrafficModel::Saturated.next_gap(&mut rng), None);
        assert_eq!(TrafficModel::Saturated.initial_gap(&mut rng), None);
    }

    #[test]
    fn constructors_set_policies() {
        assert_eq!(
            SourceCfg::poisson(3, 10.0).dst,
            DstPolicy::PerPacketRandomNeighbor
        );
        assert_eq!(
            SourceCfg::cbr(3, SimDuration::from_millis(5)).dst,
            DstPolicy::StickyRandomNeighbor
        );
        assert_eq!(SourceCfg::saturated(3, 4).dst, DstPolicy::Fixed(4));
    }
}
