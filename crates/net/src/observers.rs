//! Ready-made observers: performance metrics and an event trace.
//!
//! Both are ordinary [`NetObserver`]s; compose them with a detector by
//! nesting (implement `NetObserver` for a tuple-like struct and fan out, as
//! the integration tests do) or use them alone for network studies.

use crate::world::NetObserver;
use crate::NodeId;
use mg_dcf::{Frame, FrameKind, MacSdu};
use mg_phy::Medium;
use mg_sim::{SimDuration, SimTime};
use mg_stats::describe::Summary;
use std::collections::HashMap;

/// Per-node traffic metrics: delivery counts, MAC-level service delay
/// (enqueue → ACK) and drop counts.
///
/// # Example
///
/// ```
/// use mg_net::{MetricsObserver, SourceCfg, World};
/// use mg_dcf::MacTiming;
/// use mg_geom::Vec2;
/// use mg_phy::PropagationModel;
/// use mg_sim::SimTime;
///
/// let mut world = World::new(
///     vec![Vec2::new(0.0, 0.0), Vec2::new(200.0, 0.0)],
///     PropagationModel::free_space(),
///     250.0, 550.0, MacTiming::paper_default(), 1,
///     MetricsObserver::new(),
/// );
/// world.add_source(SourceCfg::saturated(0, 1));
/// world.run_until(SimTime::from_secs(1));
/// let m = world.observer();
/// assert!(m.delivered(0) > 100);
/// assert!(m.delay_summary(0).mean() > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct MetricsObserver {
    enqueue_times: HashMap<u64, (NodeId, SimTime)>,
    delivered: HashMap<NodeId, u64>,
    dropped: HashMap<NodeId, u64>,
    delays: HashMap<NodeId, Summary>,
    horizon: SimTime,
}

impl MetricsObserver {
    /// An empty metrics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets `node` delivered (ACKed / broadcast completed).
    pub fn delivered(&self, node: NodeId) -> u64 {
        self.delivered.get(&node).copied().unwrap_or(0)
    }

    /// Packets `node` abandoned (retry limit).
    pub fn dropped(&self, node: NodeId) -> u64 {
        self.dropped.get(&node).copied().unwrap_or(0)
    }

    /// Delivery ratio for `node`.
    pub fn delivery_ratio(&self, node: NodeId) -> f64 {
        let d = self.delivered(node) as f64;
        let total = d + self.dropped(node) as f64;
        if total == 0.0 {
            0.0
        } else {
            d / total
        }
    }

    /// MAC service delay statistics (seconds) for packets sourced at `node`.
    pub fn delay_summary(&self, node: NodeId) -> Summary {
        self.delays.get(&node).copied().unwrap_or_default()
    }

    /// Throughput in packets per second for `node`, over the observed span.
    pub fn throughput_pps(&self, node: NodeId) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delivered(node) as f64 / secs
        }
    }

    /// Latest event time seen (the measurement horizon).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }
}

impl NetObserver for MetricsObserver {
    fn on_enqueue(&mut self, node: NodeId, sdu: &MacSdu, now: SimTime) {
        self.enqueue_times.insert(sdu.id, (node, now));
        self.horizon = self.horizon.max(now);
    }

    fn on_packet_done(&mut self, node: NodeId, sdu: &MacSdu, delivered: bool, now: SimTime) {
        self.horizon = self.horizon.max(now);
        if delivered {
            *self.delivered.entry(node).or_insert(0) += 1;
        } else {
            *self.dropped.entry(node).or_insert(0) += 1;
        }
        if let Some((src, t0)) = self.enqueue_times.remove(&sdu.id) {
            if delivered {
                self.delays
                    .entry(src)
                    .or_default()
                    .push(now.saturating_since(t0).as_secs_f64());
            }
        }
    }
}

/// One recorded on-air event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the frame started.
    pub start: SimTime,
    /// When it ended.
    pub end: SimTime,
    /// Transmitting node.
    pub src: NodeId,
    /// Short frame tag: `RTS`, `CTS`, `DATA`, `ACK`.
    pub kind: &'static str,
    /// Destination, `None` for broadcast.
    pub dst: Option<NodeId>,
}

/// Records every transmission into a timeline — the simulator's answer to a
/// packet capture. Bounded by `cap` entries (oldest kept) so long runs stay
/// cheap.
#[derive(Debug)]
pub struct TraceObserver {
    entries: Vec<TraceEntry>,
    cap: usize,
}

impl TraceObserver {
    /// A trace holding at most `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace capacity must be positive");
        TraceObserver {
            entries: Vec::new(),
            cap,
        }
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Renders a human-readable timeline (one line per frame).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let dst = e
                .dst
                .map(|d| format!("{d}"))
                .unwrap_or_else(|| "*".to_string());
            out.push_str(&format!(
                "{:>12.6}s  {:<4} {:>3} -> {:<3} ({})\n",
                e.start.as_secs_f64(),
                e.kind,
                e.src,
                dst,
                SimDuration::from_nanos(e.end.as_nanos() - e.start.as_nanos()),
            ));
        }
        out
    }
}

impl NetObserver for TraceObserver {
    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {
        if self.entries.len() == self.cap {
            return; // keep the prefix; early protocol behaviour matters most
        }
        let kind = match frame.kind {
            FrameKind::Rts(_) => "RTS",
            FrameKind::Cts => "CTS",
            FrameKind::Data { .. } => "DATA",
            FrameKind::Ack => "ACK",
        };
        let dst = match frame.dst {
            mg_dcf::Dest::Unicast(d) => Some(d),
            mg_dcf::Dest::Broadcast => None,
        };
        self.entries.push(TraceEntry {
            start: now,
            end,
            src,
            kind,
            dst,
        });
    }
}

/// Fans every event out to two observers — compose arbitrarily by nesting
/// (`Fanout(a, Fanout(b, c))`).
///
/// # Example
///
/// ```
/// use mg_net::{Fanout, MetricsObserver, TraceObserver};
///
/// let obs = Fanout(MetricsObserver::new(), TraceObserver::new(128));
/// // `obs.0` is the metrics half, `obs.1` the trace half.
/// ```
#[derive(Debug)]
pub struct Fanout<A, B>(pub A, pub B);

impl<A: NetObserver, B: NetObserver> NetObserver for Fanout<A, B> {
    fn on_channel_edge(&mut self, node: NodeId, busy: bool, now: SimTime) {
        self.0.on_channel_edge(node, busy, now);
        self.1.on_channel_edge(node, busy, now);
    }
    fn on_tx_start(&mut self, src: NodeId, frame: &Frame, now: SimTime, end: SimTime) {
        self.0.on_tx_start(src, frame, now, end);
        self.1.on_tx_start(src, frame, now, end);
    }
    fn on_frame_decoded(&mut self, medium: &Medium, at: NodeId, frame: &Frame, start: SimTime, end: SimTime) {
        self.0.on_frame_decoded(medium, at, frame, start, end);
        self.1.on_frame_decoded(medium, at, frame, start, end);
    }
    fn on_frame_garbled(&mut self, at: NodeId, now: SimTime) {
        self.0.on_frame_garbled(at, now);
        self.1.on_frame_garbled(at, now);
    }
    fn on_enqueue(&mut self, node: NodeId, sdu: &MacSdu, now: SimTime) {
        self.0.on_enqueue(node, sdu, now);
        self.1.on_enqueue(node, sdu, now);
    }
    fn on_packet_done(&mut self, node: NodeId, sdu: &MacSdu, delivered: bool, now: SimTime) {
        self.0.on_packet_done(node, sdu, delivered, now);
        self.1.on_packet_done(node, sdu, delivered, now);
    }
    fn on_app_deliver(&mut self, node: NodeId, origin: NodeId, app_id: u64, now: SimTime) {
        self.0.on_app_deliver(node, origin, app_id, now);
        self.1.on_app_deliver(node, origin, app_id, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::SourceCfg;
    use crate::world::World;
    use mg_dcf::MacTiming;
    use mg_geom::Vec2;
    use mg_phy::PropagationModel;

    fn pair_world<O: NetObserver>(obs: O) -> World<O> {
        World::new(
            vec![Vec2::new(0.0, 0.0), Vec2::new(200.0, 0.0)],
            PropagationModel::free_space(),
            250.0,
            550.0,
            MacTiming::paper_default(),
            3,
            obs,
        )
    }

    #[test]
    fn metrics_track_throughput_and_delay() {
        let mut w = pair_world(MetricsObserver::new());
        w.add_source(SourceCfg::saturated(0, 1));
        w.run_until(SimTime::from_secs(2));
        let m = w.observer();
        assert!(m.delivered(0) > 300, "{}", m.delivered(0));
        assert_eq!(m.dropped(0), 0);
        assert!((m.delivery_ratio(0) - 1.0).abs() < 1e-9);
        // One exchange on a clean channel takes ~4 ms; queue depth 2 roughly
        // doubles the sojourn.
        let d = m.delay_summary(0);
        assert!(d.count() > 300);
        assert!(d.mean() > 0.003 && d.mean() < 0.05, "mean {}", d.mean());
        let tp = m.throughput_pps(0);
        assert!(tp > 150.0, "{tp}");
    }

    #[test]
    fn trace_records_the_four_way_handshake() {
        let mut w = pair_world(TraceObserver::new(64));
        w.add_source(SourceCfg::saturated(0, 1));
        w.run_until(SimTime::from_millis(50));
        let t = w.observer();
        let kinds: Vec<&str> = t.entries().iter().take(4).map(|e| e.kind).collect();
        assert_eq!(kinds, ["RTS", "CTS", "DATA", "ACK"]);
        assert_eq!(t.entries()[0].src, 0);
        assert_eq!(t.entries()[1].src, 1);
        let rendered = t.render();
        assert!(rendered.contains("RTS"));
        assert!(rendered.contains("-> 1"));
    }

    #[test]
    fn trace_respects_capacity() {
        let mut w = pair_world(TraceObserver::new(10));
        w.add_source(SourceCfg::saturated(0, 1));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.observer().entries().len(), 10);
    }

    #[test]
    fn fanout_feeds_both_halves() {
        let mut w = pair_world(Fanout(MetricsObserver::new(), TraceObserver::new(16)));
        w.add_source(SourceCfg::saturated(0, 1));
        w.run_until(SimTime::from_millis(100));
        let Fanout(metrics, trace) = w.observer();
        assert!(metrics.delivered(0) > 5);
        assert!(!trace.entries().is_empty());
    }

    #[test]
    fn metrics_empty_is_sane() {
        let m = MetricsObserver::new();
        assert_eq!(m.delivered(5), 0);
        assert_eq!(m.delivery_ratio(5), 0.0);
        assert_eq!(m.throughput_pps(5), 0.0);
    }
}
