//! End-to-end collaborative-detection tests over recorded worlds.
//!
//! The anchor property (the ISSUE's satellite): a k = 1 quorum holding a
//! single honest member is **byte-identical** to the plain solo detector
//! path fed the same stream — diagnosis, sample population, rank-sum
//! history and verdict — clean and under observation faults. Everything the
//! quorum layer adds (gossip, tallies, Byzantine roles) composes on top of
//! unmodified detectors.

use mg_detect::{
    template_from_meta, FaultPlan, MonitorConfig, NodeId, ObsJournal, ObsMeta, ObsRecorder,
    ScenarioBuilder, SessionSpec, WorldProbe,
};
use mg_dcf::BackoffPolicy;
use mg_net::{Scenario, ScenarioConfig, SourceCfg};
use mg_quorum::{members_from_journal, QuorumSpec};
use mg_sim::{SimDuration, SimTime};
use mg_trace::{Metrics, TraceConfig, Tracer};

const SECS: u64 = 4;

/// Records one short saturated grid world with the `n` closest in-range
/// neighbors of the tagged node as vantages. The journal is the *clean*
/// stream: fault plans are applied by the replayed detectors, exactly as
/// the core record/replay contract specifies.
fn record(seed: u64, pm: u8, n: usize) -> ObsJournal {
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: SECS,
        rate_pps: 2.0,
        ..ScenarioConfig::grid_paper(seed)
    });
    let (s, r) = scenario.tagged_pair();
    let pos = scenario.positions().to_vec();
    let mut near: Vec<NodeId> = (0..pos.len()).filter(|&i| i != s).collect();
    near.sort_by(|&a, &b| {
        pos[a]
            .distance(pos[s])
            .partial_cmp(&pos[b].distance(pos[s]))
            .expect("no NaN positions")
    });
    let vantages: Vec<NodeId> = near.into_iter().take(n).collect();
    assert!(vantages.contains(&r), "the paper pair's vantage is among the closest");
    let mut b = ScenarioBuilder::new(scenario);
    let a = b.attacker(s);
    for &v in &vantages {
        b.reserve(v);
    }
    b.source(SourceCfg::saturated(s, r));
    let meta = ObsMeta {
        tagged: s,
        vantages,
        pair_distance: pos[s].distance(pos[r]),
        seed,
        params: vec![("pm".into(), pm.to_string())],
    };
    let mut world = b.probe(ObsRecorder::new(meta)).build();
    if pm > 0 {
        world.set_policy(a.id(), BackoffPolicy::Scaled { pm });
    }
    world.run_until(SimTime::from_secs(SECS));
    world.probe().journal().clone()
}

/// Finds a plan seed under which exactly `want` of `members` draw a lying
/// role — how the tests (and the bench) pin a realized Byzantine count out
/// of probabilistic per-vantage draws.
fn seed_with_liars(plan: &FaultPlan, members: &[(NodeId, f64)], want: usize) -> FaultPlan {
    for seed in 0..10_000 {
        let candidate = plan.clone().with_seed(seed);
        let liars = members
            .iter()
            .filter(|&&(v, _)| candidate.monitor_role(v as u64).lies())
            .count();
        if liars == want {
            return candidate;
        }
    }
    panic!("no seed in 0..10000 realizes {want} liars");
}

#[test]
fn k1_quorum_is_byte_identical_to_the_solo_detector() {
    for (pm, plan) in [
        (0u8, FaultPlan::default()),
        (75, FaultPlan::default()),
        (75, FaultPlan::parse("seed=5,drop=0.15,corrupt=0.05").unwrap()),
    ] {
        let journal = record(11, pm, 1);
        let meta = journal.meta();
        let template = template_from_meta(meta).with_sample_size(10);
        let members = members_from_journal(&journal);
        assert_eq!(members.len(), 1);
        let (v, d) = members[0];

        let cfg = MonitorConfig {
            tagged: meta.tagged,
            vantage: v,
            pair_distance: d,
            ..template
        };
        let mut solo = SessionSpec::solo(cfg).with_faults(plan.clone()).build();
        for obs in journal.events() {
            let _ = solo.ingest(obs);
        }

        let mut q = QuorumSpec::new(meta.tagged, &members, template, 1)
            .with_faults(plan.clone())
            .build();
        journal.replay(&mut q);
        q.finish();

        let member = q.member_session(v).expect("member exists");
        assert_eq!(member.diagnosis(), solo.diagnosis(), "pm={pm} plan={plan:?}");
        assert_eq!(member.tests(), solo.tests(), "pm={pm}");
        assert_eq!(member.violations(), solo.violations(), "pm={pm}");
        assert_eq!(
            member.as_monitor().expect("solo member").samples(),
            solo.as_monitor().expect("solo ref").samples(),
            "pm={pm}"
        );
        assert_eq!(q.is_flagged(), solo.diagnosis().is_flagged(), "pm={pm}");
    }
}

#[test]
fn every_member_of_a_wide_quorum_matches_its_own_solo_reference() {
    let journal = record(13, 75, 3);
    let meta = journal.meta();
    let template = template_from_meta(meta).with_sample_size(10);
    let members = members_from_journal(&journal);
    assert_eq!(members.len(), 3);

    let mut q = QuorumSpec::new(meta.tagged, &members, template, 2).build();
    journal.replay(&mut q);
    q.finish();

    for &(v, d) in &members {
        let cfg = MonitorConfig {
            tagged: meta.tagged,
            vantage: v,
            pair_distance: d,
            ..template
        };
        let mut solo = SessionSpec::solo(cfg).build();
        for obs in journal.events() {
            let _ = solo.ingest(obs);
        }
        let member = q.member_session(v).expect("member exists");
        assert_eq!(member.diagnosis(), solo.diagnosis(), "vantage {v}");
        assert_eq!(member.tests(), solo.tests(), "vantage {v}");
    }
}

#[test]
fn f_liars_below_k_never_falsely_convict_a_clean_node() {
    let journal = record(17, 0, 3);
    let meta = journal.meta();
    // A sample size far beyond what 4 seconds can collect: the honest
    // members are statistically silent by construction, so the only
    // accusations in flight are fabricated.
    let template = template_from_meta(meta).with_sample_size(500);
    let members = members_from_journal(&journal);
    let plan = seed_with_liars(&FaultPlan::parse("lie=0.45").unwrap(), &members, 1);

    let mut q = QuorumSpec::new(meta.tagged, &members, template, 2)
        .with_faults(plan.clone())
        .build();
    journal.replay(&mut q);
    q.finish();

    assert_eq!(q.byzantine_count(), 1);
    assert!(q.gossip().sent > 0, "the liar actually fabricated accusations");
    assert!(q.votes_against(meta.tagged) <= 1, "one liar is at most one vote");
    assert!(!q.is_flagged(), "f = 1 < k = 2 must never convict a clean node");

    // The same adversary against a k = 1 quorum succeeds — the quorum is
    // what buys the tolerance, not the adversary being weak.
    let mut weak = QuorumSpec::new(meta.tagged, &members, template, 1)
        .with_faults(plan)
        .build();
    journal.replay(&mut weak);
    weak.finish();
    assert!(weak.is_flagged(), "a single false accuser defeats k = 1");
}

#[test]
fn honest_quorum_convicts_a_real_attacker() {
    let journal = record(13, 75, 3);
    let meta = journal.meta();
    let template = template_from_meta(meta).with_sample_size(10);
    let members = members_from_journal(&journal);

    let mut q = QuorumSpec::new(meta.tagged, &members, template, 2).build();
    journal.replay(&mut q);
    q.finish();

    assert!(q.is_flagged(), "two honest members should corroborate at pm=75");
    assert!(q.votes_against(meta.tagged) >= 2);
    let g = q.gossip();
    assert!(g.sent > 0 && g.delivered > 0 && g.dropped == 0);
}

#[test]
fn equal_seeds_replay_byte_identical_gossip() {
    let run = || {
        let journal = record(19, 60, 3);
        let meta = journal.meta();
        let template = template_from_meta(meta).with_sample_size(10);
        let members = members_from_journal(&journal);
        let plan = FaultPlan::parse("seed=4,lie=0.3,mute=0.2").unwrap();
        let tracer = Tracer::new(TraceConfig::default());
        let metrics = Metrics::new(60);
        let mut q = QuorumSpec::new(meta.tagged, &members, template, 2)
            .with_faults(plan)
            .with_gossip(0.25, SimDuration::from_millis(5))
            .with_seed(19)
            .with_trace(tracer.clone(), metrics.clone())
            .build();
        journal.replay(&mut q);
        q.finish();
        (q.report(), q.gossip(), tracer.to_jsonl(), metrics.snapshot().to_json().render())
    };
    let (report_a, gossip_a, trace_a, metrics_a) = run();
    let (report_b, gossip_b, trace_b, metrics_b) = run();
    assert_eq!(report_a, report_b);
    assert_eq!(gossip_a, gossip_b);
    assert_eq!(trace_a, trace_b);
    assert_eq!(metrics_a, metrics_b);
    assert_eq!(gossip_a.sent, gossip_a.dropped + gossip_a.delivered, "counts conserve");
}
