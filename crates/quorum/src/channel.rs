//! A simulated lossy, delayed control channel for accusation gossip.
//!
//! The channel is deliberately simple: every accusation is broadcast to
//! every other quorum member, each copy independently dropped with a fixed
//! probability and otherwise delivered after a fixed delay. Fixed delay
//! means deliver times are monotone in send times, so a FIFO queue *is* a
//! correct event queue — no priority structure needed, and equal seeds
//! replay the exact same drop pattern byte for byte.

use crate::accusation::Accusation;
use mg_detect::NodeId;
use mg_sim::rng::{Rng, SplitMix64, Xoshiro256};
use mg_sim::{SimDuration, SimTime};
use mg_trace::{Counter, EventKind, Metrics, Tracer};
use std::collections::VecDeque;

/// Domain constant separating the gossip channel's drop stream from every
/// other consumer of the quorum seed ("mg-gossp" in ASCII).
const GOSSIP_DOMAIN: u64 = 0x6D67_2D67_6F73_7370;

/// Loss probability and propagation delay of the control channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GossipConfig {
    /// Probability each (accusation, receiver) copy is lost, in `[0, 1]`.
    pub loss: f64,
    /// Fixed propagation delay applied to every delivered copy.
    pub delay: SimDuration,
}

impl Default for GossipConfig {
    /// A perfect channel: nothing lost, nothing delayed.
    fn default() -> GossipConfig {
        GossipConfig { loss: 0.0, delay: SimDuration::ZERO }
    }
}

/// Monotone counters over a channel's lifetime. `sent` counts per-receiver
/// copies, so `sent == dropped + delivered + in_flight` at all times and
/// `sent == dropped + delivered` once the queue is flushed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipCounts {
    /// Per-receiver accusation copies offered to the channel.
    pub sent: u64,
    /// Copies lost to channel loss.
    pub dropped: u64,
    /// Copies handed to their receiver.
    pub delivered: u64,
}

#[derive(Clone, Debug)]
struct Delivery {
    deliver_at: SimTime,
    to: NodeId,
    accusation: Accusation,
}

/// The simulated control channel: seeded loss, fixed delay, FIFO delivery.
#[derive(Clone, Debug)]
pub struct GossipChannel {
    cfg: GossipConfig,
    rng: Xoshiro256,
    queue: VecDeque<Delivery>,
    counts: GossipCounts,
}

impl GossipChannel {
    /// A channel whose drop decisions derive from `seed` alone.
    pub fn new(cfg: GossipConfig, seed: u64) -> GossipChannel {
        GossipChannel {
            cfg,
            rng: Xoshiro256::new(SplitMix64::mix(seed ^ GOSSIP_DOMAIN)),
            queue: VecDeque::new(),
            counts: GossipCounts::default(),
        }
    }

    /// Broadcasts one accusation to every receiver in `receivers` except the
    /// accuser itself. Each copy draws one Bernoulli trial in receiver
    /// order, so the drop pattern is a pure function of the send sequence.
    pub fn broadcast(
        &mut self,
        acc: &Accusation,
        receivers: &[NodeId],
        tracer: &Tracer,
        metrics: &Metrics,
    ) {
        tracer.emit(
            acc.at.as_nanos(),
            Some(acc.accuser),
            EventKind::AccusationSent { suspect: acc.suspect },
        );
        metrics.bump(acc.accuser, Counter::AccusationsSent);
        for &to in receivers {
            if to == acc.accuser {
                continue;
            }
            self.counts.sent += 1;
            if self.rng.bernoulli(self.cfg.loss) {
                self.counts.dropped += 1;
                tracer.emit(
                    acc.at.as_nanos(),
                    Some(to),
                    EventKind::AccusationDropped { suspect: acc.suspect },
                );
                metrics.bump(to, Counter::AccusationsDropped);
            } else {
                self.queue.push_back(Delivery {
                    deliver_at: acc.at + self.cfg.delay,
                    to,
                    accusation: acc.clone(),
                });
            }
        }
    }

    /// Pops every delivery due at or before `now`, in send order. The fixed
    /// delay makes the FIFO front the earliest due delivery.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<(NodeId, Accusation)> {
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            if front.deliver_at > now {
                break;
            }
            let d = self.queue.pop_front().expect("front exists");
            self.counts.delivered += 1;
            out.push((d.to, d.accusation));
        }
        out
    }

    /// Flushes every in-flight delivery regardless of due time — the
    /// end-of-run drain.
    pub fn drain_all(&mut self) -> Vec<(NodeId, Accusation)> {
        self.drain_due(SimTime::MAX)
    }

    /// Copies currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime counters.
    pub fn counts(&self) -> GossipCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accusation::EvidenceKind;

    fn acc(accuser: NodeId, at_us: u64) -> Accusation {
        Accusation {
            accuser,
            suspect: 0,
            evidence: EvidenceKind::Statistical,
            score: 0.01,
            epoch: 0,
            at: SimTime::from_micros(at_us),
        }
    }

    #[test]
    fn perfect_channel_delivers_every_copy_in_order() {
        let mut ch = GossipChannel::new(GossipConfig::default(), 7);
        let (tr, m) = (Tracer::disabled(), Metrics::disabled());
        ch.broadcast(&acc(1, 10), &[1, 2, 3], &tr, &m);
        ch.broadcast(&acc(2, 20), &[1, 2, 3], &tr, &m);
        assert_eq!(ch.in_flight(), 4);
        let due = ch.drain_due(SimTime::from_micros(10));
        assert_eq!(due.iter().map(|(to, _)| *to).collect::<Vec<_>>(), vec![2, 3]);
        let rest = ch.drain_all();
        assert_eq!(rest.len(), 2);
        let c = ch.counts();
        assert_eq!((c.sent, c.dropped, c.delivered), (4, 0, 4));
    }

    #[test]
    fn delay_postpones_delivery() {
        let cfg = GossipConfig { loss: 0.0, delay: SimDuration::from_micros(100) };
        let mut ch = GossipChannel::new(cfg, 7);
        let (tr, m) = (Tracer::disabled(), Metrics::disabled());
        ch.broadcast(&acc(1, 10), &[1, 2], &tr, &m);
        assert!(ch.drain_due(SimTime::from_micros(109)).is_empty());
        assert_eq!(ch.drain_due(SimTime::from_micros(110)).len(), 1);
    }

    #[test]
    fn loss_is_seeded_and_conserves_counts() {
        let cfg = GossipConfig { loss: 0.5, delay: SimDuration::ZERO };
        let (tr, m) = (Tracer::disabled(), Metrics::disabled());
        let run = |seed: u64| {
            let mut ch = GossipChannel::new(cfg, seed);
            for i in 0..50 {
                ch.broadcast(&acc(1, 10 + i), &[1, 2, 3, 4], &tr, &m);
            }
            let delivered = ch.drain_all().len() as u64;
            (ch.counts(), delivered)
        };
        let (c1, d1) = run(7);
        let (c2, d2) = run(7);
        let (c3, _) = run(8);
        assert_eq!(c1, c2);
        assert_eq!(d1, d2);
        assert_ne!(c1.dropped, c3.dropped, "different seeds should drop differently");
        assert_eq!(c1.sent, 150);
        assert_eq!(c1.dropped + c1.delivered, c1.sent);
        assert!(c1.dropped > 0 && c1.delivered > 0);
    }

    #[test]
    fn lossy_broadcast_traces_and_counts_per_node() {
        let cfg = GossipConfig { loss: 1.0, delay: SimDuration::ZERO };
        let mut ch = GossipChannel::new(cfg, 1);
        let tr = Tracer::new(mg_trace::TraceConfig::verbose());
        let m = Metrics::new(4);
        ch.broadcast(&acc(1, 10), &[1, 2, 3], &tr, &m);
        let kinds: Vec<&str> = tr.events().iter().map(|e| e.kind.tag()).collect();
        assert_eq!(kinds, vec!["accusation_sent", "accusation_dropped", "accusation_dropped"]);
        let snap = m.snapshot();
        assert_eq!(snap.total(Counter::AccusationsSent), 1);
        assert_eq!(snap.total(Counter::AccusationsDropped), 2);
    }
}
