//! `mg-quorum` — collaborative detection over the solo detector core.
//!
//! The paper's monitor is a *single* vantage deciding alone. One lying or
//! broken monitor therefore decides alone too. This crate makes the verdict
//! collective:
//!
//! 1. Every quorum member runs the unmodified solo detector
//!    ([`mg_detect::DetectorSession`]) at its own vantage, fed the shared
//!    observation stream (monitors filter by vantage internally, so one
//!    stream serves all members unchanged).
//! 2. Local evidence — a deterministic conviction or a rejected rank-sum
//!    test — becomes a typed [`Accusation`] gossiped to every peer over a
//!    seeded lossy, delayed [`GossipChannel`].
//! 3. Each member tallies *distinct accusers* per suspect and convicts on a
//!    **k-of-n quorum**. Votes are deduplicated by accuser, so `f`
//!    Byzantine monitors contribute at most `f` votes anywhere: honest
//!    members stay silent on a well-behaved node, hence `f < k` implies
//!    zero false convictions — exactly the bound the ci.sh Byzantine gate
//!    pins at PM = 0.
//!
//! Byzantine behavior is a seeded fault layer
//! ([`mg_fault::QuorumFaults`]): each vantage draws a
//! [`MonitorRole`] — honest, false-accuser, mute or
//! flip — from its private `(plan seed, vantage)` stream, so equal plans
//! replay the exact same adversary byte for byte.
//!
//! ```
//! use mg_quorum::QuorumSpec;
//! use mg_detect::MonitorConfig;
//!
//! let template = MonitorConfig::grid_paper(0, 1, 240.0);
//! let mut q = QuorumSpec::new(0, &[(1, 240.0), (2, 300.0)], template, 2).build();
//! // feed the shared Obs stream ... then:
//! q.finish();
//! assert!(!q.is_flagged()); // nothing observed, nobody convicted
//! ```

#![warn(missing_docs)]

mod accusation;
mod channel;
mod session;

pub use accusation::{Accusation, EvidenceKind};
pub use channel::{GossipChannel, GossipConfig, GossipCounts};
pub use mg_fault::{MonitorRole, QuorumFaults};
pub use session::{members_from_journal, QuorumSession, QuorumSpec};
