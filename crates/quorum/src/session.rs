//! The collaborative detection session: N per-vantage detectors, accusation
//! gossip, and k-of-n conviction.

use crate::accusation::{Accusation, EvidenceKind};
use crate::channel::{GossipChannel, GossipConfig, GossipCounts};
use mg_detect::{
    DetectorSession, DiagnosisDelta, MonitorConfig, NodeId, SessionSpec,
};
use mg_fault::{FaultPlan, MonitorRole};
use mg_obs::{Obs, ObsSink};
use mg_sim::rng::Rng;
use mg_sim::{SimDuration, SimTime};
use mg_trace::{Counter, EventKind, Metrics, Tracer};
use std::collections::{BTreeMap, BTreeSet};

/// Complete specification of a [`QuorumSession`], gathered before
/// construction — the same builder shape as
/// [`SessionSpec`](mg_detect::SessionSpec).
#[derive(Clone, Debug)]
pub struct QuorumSpec {
    tagged: NodeId,
    members: Vec<(NodeId, f64)>,
    template: MonitorConfig,
    k: usize,
    faults: FaultPlan,
    gossip: GossipConfig,
    seed: u64,
    tracer: Tracer,
    metrics: Metrics,
}

impl QuorumSpec {
    /// A quorum of one solo detector per `(vantage, pair distance)` entry,
    /// convicting on `k` distinct accusers. `k` is clamped to at least 1;
    /// a `k` larger than the member count makes conviction impossible (by
    /// design: the caller chose an unreachable quorum).
    pub fn new(
        tagged: NodeId,
        members: &[(NodeId, f64)],
        template: MonitorConfig,
        k: usize,
    ) -> QuorumSpec {
        QuorumSpec {
            tagged,
            members: members.to_vec(),
            template,
            k: k.max(1),
            faults: FaultPlan::default(),
            gossip: GossipConfig::default(),
            seed: 0,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Installs a fault plan. The plan's observation faults flow into each
    /// member's solo detector exactly as in [`SessionSpec::with_faults`];
    /// its [quorum layer](mg_fault::QuorumFaults) assigns each member a
    /// seeded [`MonitorRole`].
    pub fn with_faults(mut self, plan: FaultPlan) -> QuorumSpec {
        self.faults = plan;
        self
    }

    /// Configures the gossip channel: per-copy loss probability and fixed
    /// propagation delay.
    pub fn with_gossip(mut self, loss: f64, delay: SimDuration) -> QuorumSpec {
        self.gossip = GossipConfig { loss, delay };
        self
    }

    /// Seeds the gossip channel's drop stream (domain-separated from every
    /// fault stream). Equal seeds replay equal drop patterns.
    pub fn with_seed(mut self, seed: u64) -> QuorumSpec {
        self.seed = seed;
        self
    }

    /// Attaches a tracer and metrics handle for gossip observability.
    pub fn with_trace(mut self, tracer: Tracer, metrics: Metrics) -> QuorumSpec {
        self.tracer = tracer;
        self.metrics = metrics;
        self
    }

    /// Builds the session: one solo [`DetectorSession`] per member (so a
    /// single-member quorum is byte-identical to a plain solo session fed
    /// the same stream), roles drawn from the fault plan, lie cadences from
    /// each liar's private quorum RNG.
    pub fn build(self) -> QuorumSession {
        let vantages: Vec<NodeId> = self.members.iter().map(|&(v, _)| v).collect();
        let members = self
            .members
            .iter()
            .map(|&(vantage, distance)| {
                let cfg = MonitorConfig {
                    tagged: self.tagged,
                    vantage,
                    pair_distance: distance,
                    ..self.template
                };
                let session = SessionSpec::solo(cfg)
                    .with_faults(self.faults.clone())
                    .build();
                let role = self.faults.monitor_role(vantage as u64);
                // The cadence draws follow the role draw on the member's
                // private quorum stream, so they replay with the plan.
                let mut rng = self.faults.quorum_rng(vantage as u64);
                let _role_draw = rng.uniform01();
                let first_lie = 1 + rng.below(10);
                let lie_period = 10 + rng.below(21);
                Member {
                    vantage,
                    role,
                    session,
                    epoch: 0,
                    rounds: 0,
                    next_lie: first_lie,
                    lie_period,
                    suspected_by: BTreeMap::new(),
                    convicted: BTreeSet::new(),
                }
            })
            .collect();
        QuorumSession {
            tagged: self.tagged,
            k: self.k,
            members,
            vantages,
            channel: GossipChannel::new(self.gossip, self.seed),
            tracer: self.tracer,
            metrics: self.metrics,
        }
    }
}

/// One quorum member: a solo detector plus the member's gossip state.
struct Member {
    vantage: NodeId,
    role: MonitorRole,
    session: DetectorSession,
    /// Accusations this member has sent (its next epoch number).
    epoch: u64,
    /// Tagged-RTS rounds this member has decoded (drives the lie cadence).
    rounds: u64,
    /// Round index of the next fabricated accusation, for lying roles.
    next_lie: u64,
    lie_period: u64,
    /// Per-suspect set of distinct accusers, this member's own vote
    /// included.
    suspected_by: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Suspects this member has convicted (reached k distinct accusers).
    convicted: BTreeSet<NodeId>,
}

impl Member {
    fn next_accusation(&mut self, suspect: NodeId, evidence: EvidenceKind, score: f64, at: SimTime) -> Accusation {
        let epoch = self.epoch;
        self.epoch += 1;
        Accusation { accuser: self.vantage, suspect, evidence, score, epoch, at }
    }
}

/// A collaborative detection session.
///
/// Feed it the same [`Obs`] stream a [`MonitorPool`](mg_detect::MonitorPool)
/// would receive (it implements [`ObsSink`], so `journal.replay(&mut q)`
/// works unchanged). Every member's solo detector ingests every event —
/// monitors filter by vantage internally — and converts its local
/// [`DiagnosisDelta`] stream into [`Accusation`]s per its
/// [`MonitorRole`]:
///
/// * honest members accuse exactly when a deterministic check convicts or a
///   rank-sum test rejects;
/// * [`FalseAccuser`](MonitorRole::FalseAccuser)s additionally fabricate
///   accusations against the tagged node on a seeded cadence;
/// * [`Mute`](MonitorRole::Mute) members suppress their real evidence;
/// * [`Flip`](MonitorRole::Flip) members do both.
///
/// Accusations travel the lossy, delayed [`GossipChannel`]; every member
/// tallies *distinct accusers* per suspect (self-votes included, duplicates
/// idempotent) and convicts at `k`. Because votes are deduplicated by
/// accuser, `f` Byzantine members can contribute at most `f` votes at any
/// honest member: with honest members producing no evidence, `f < k`
/// guarantees zero false convictions.
///
/// Call [`QuorumSession::finish`] after the last event to flush in-flight
/// gossip before reading verdicts.
pub struct QuorumSession {
    tagged: NodeId,
    k: usize,
    members: Vec<Member>,
    vantages: Vec<NodeId>,
    channel: GossipChannel,
    tracer: Tracer,
    metrics: Metrics,
}

impl QuorumSession {
    /// Feeds one observation: delivers due gossip, advances every member's
    /// detector, converts fresh evidence into accusations and broadcasts
    /// them.
    pub fn feed(&mut self, obs: &Obs) {
        let now = obs_time(obs);
        for (to, acc) in self.channel.drain_due(now) {
            self.deliver(to, &acc);
        }
        let mut outgoing: Vec<Accusation> = Vec::new();
        let tagged = self.tagged;
        for member in &mut self.members {
            if member.role.lies() && is_tagged_rts_at(obs, tagged, member.vantage) {
                member.rounds += 1;
                if member.rounds >= member.next_lie {
                    member.next_lie = member.rounds + member.lie_period;
                    outgoing.push(member.next_accusation(
                        tagged,
                        EvidenceKind::Statistical,
                        0.0,
                        now,
                    ));
                }
            }
            let deltas: Vec<DiagnosisDelta> = member.session.ingest(obs).collect();
            if member.role.suppresses() {
                continue;
            }
            for delta in deltas {
                match delta {
                    DiagnosisDelta::ViolationFlagged { violation, .. } => {
                        outgoing.push(member.next_accusation(
                            tagged,
                            EvidenceKind::Deterministic(violation.kind_str()),
                            0.0,
                            violation.at(),
                        ));
                    }
                    DiagnosisDelta::TestFired { result, reject: true, at } => {
                        outgoing.push(member.next_accusation(
                            tagged,
                            EvidenceKind::Statistical,
                            result.p_value,
                            at,
                        ));
                    }
                    _ => {}
                }
            }
        }
        for acc in outgoing {
            // The accuser trusts its own claim immediately; everyone else
            // hears it through the channel.
            self.tally(acc.accuser, &acc);
            self.channel.broadcast(&acc, &self.vantages, &self.tracer, &self.metrics);
        }
    }

    /// Flushes every in-flight accusation. Call once after the last event,
    /// before reading verdicts.
    pub fn finish(&mut self) {
        for (to, acc) in self.channel.drain_all() {
            self.deliver(to, &acc);
        }
    }

    fn deliver(&mut self, to: NodeId, acc: &Accusation) {
        self.tracer.emit(
            acc.at.as_nanos(),
            Some(to),
            EventKind::AccusationDelivered { suspect: acc.suspect },
        );
        self.metrics.bump(to, Counter::AccusationsDelivered);
        self.tally(to, acc);
    }

    /// Registers `acc` at the member observing from `vantage` and convicts
    /// on the k-th distinct accuser.
    fn tally(&mut self, vantage: NodeId, acc: &Accusation) {
        let k = self.k;
        let Some(member) = self.members.iter_mut().find(|m| m.vantage == vantage) else {
            return;
        };
        let accusers = member.suspected_by.entry(acc.suspect).or_default();
        accusers.insert(acc.accuser);
        if accusers.len() >= k && member.convicted.insert(acc.suspect) {
            self.tracer.emit(
                acc.at.as_nanos(),
                Some(member.vantage),
                EventKind::QuorumConvicted { suspect: acc.suspect, votes: accusers.len() },
            );
            self.metrics.bump(member.vantage, Counter::QuorumConvictions);
        }
    }

    /// The node under observation.
    pub fn tagged(&self) -> NodeId {
        self.tagged
    }

    /// The conviction quorum size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Every member's `(vantage, role)`, in construction order.
    pub fn roles(&self) -> Vec<(NodeId, MonitorRole)> {
        self.members.iter().map(|m| (m.vantage, m.role)).collect()
    }

    /// Members whose role is not [`MonitorRole::Honest`].
    pub fn byzantine_count(&self) -> usize {
        self.members.iter().filter(|m| m.role != MonitorRole::Honest).count()
    }

    /// True when at least one *honest* member has convicted `suspect` —
    /// Byzantine members' private tallies never count toward the verdict.
    pub fn convicted(&self, suspect: NodeId) -> bool {
        self.members
            .iter()
            .any(|m| m.role == MonitorRole::Honest && m.convicted.contains(&suspect))
    }

    /// The quorum verdict on the tagged node.
    pub fn is_flagged(&self) -> bool {
        self.convicted(self.tagged)
    }

    /// The largest distinct-accuser count any honest member holds against
    /// `suspect`.
    pub fn votes_against(&self, suspect: NodeId) -> usize {
        self.members
            .iter()
            .filter(|m| m.role == MonitorRole::Honest)
            .filter_map(|m| m.suspected_by.get(&suspect).map(BTreeSet::len))
            .max()
            .unwrap_or(0)
    }

    /// The solo detector of the member observing from `vantage`.
    pub fn member_session(&self, vantage: NodeId) -> Option<&DetectorSession> {
        self.members.iter().find(|m| m.vantage == vantage).map(|m| &m.session)
    }

    /// Lifetime gossip counters.
    pub fn gossip(&self) -> GossipCounts {
        self.channel.counts()
    }

    /// The report block the CLI and daemon print for a quorum run: roles,
    /// gossip counters, vote tally, verdict. One producer, like
    /// [`mg_detect::render_report`], so every consumer emits byte-identical
    /// lines.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let n = self.members.len();
        let byz = self.byzantine_count();
        let _ = writeln!(
            out,
            "roles    : {n} monitor(s), {} honest, {byz} byzantine",
            n - byz
        );
        let g = self.gossip();
        let _ = writeln!(
            out,
            "gossip   : {} copies sent, {} dropped, {} delivered",
            g.sent, g.dropped, g.delivered
        );
        let _ = writeln!(
            out,
            "quorum   : {} distinct accuser(s) against node {} (k = {})",
            self.votes_against(self.tagged),
            self.tagged,
            self.k
        );
        let _ = writeln!(
            out,
            "verdict  : node {} is {} by {}-of-{n} quorum",
            self.tagged,
            if self.is_flagged() { "MISBEHAVING" } else { "apparently well-behaved" },
            self.k
        );
        out
    }
}

impl ObsSink for QuorumSession {
    fn ingest(&mut self, obs: &Obs) {
        self.feed(obs);
    }
}

impl std::fmt::Debug for QuorumSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuorumSession")
            .field("tagged", &self.tagged)
            .field("k", &self.k)
            .field("members", &self.members.len())
            .field("byzantine", &self.byzantine_count())
            .field("flagged", &self.is_flagged())
            .finish()
    }
}

/// The `(vantage, distance)` member set a recorded journal calls for, in
/// order of preference: explicit `dist.<vantage>` header parameters (the
/// exact geometry `detect --quorum --record` measures on the live medium),
/// then the distances of the journal's first [`Obs::Ranging`] snapshot,
/// then the header's pair distance for every vantage. This is the replay
/// analogue of measuring positions on the live medium, so
/// `detect --replay --quorum` builds the same members a live run would.
pub fn members_from_journal(journal: &mg_obs::ObsJournal) -> Vec<(NodeId, f64)> {
    let meta = journal.meta();
    let explicit: Vec<(NodeId, f64)> = meta
        .vantages
        .iter()
        .filter_map(|&v| meta.param_parsed::<f64>(&format!("dist.{v}")).map(|d| (v, d)))
        .collect();
    if !explicit.is_empty() && explicit.len() == meta.vantages.len() {
        return explicit;
    }
    for obs in journal.events() {
        if let Obs::Ranging { from, to, .. } = obs {
            if *from == meta.tagged {
                return to.clone();
            }
        }
    }
    meta.vantages.iter().map(|&v| (v, meta.pair_distance)).collect()
}

/// The latest virtual instant an observation speaks about — the quorum's
/// clock for gossip delivery (mirrors the session-layer definition).
fn obs_time(o: &Obs) -> SimTime {
    match o {
        Obs::ChannelEdge { at, .. } => *at,
        Obs::TxStart { end, .. } => *end,
        Obs::Decoded { end, .. } => *end,
        Obs::Garbled { now, .. } => *now,
        Obs::Ranging { at, .. } => *at,
    }
}

/// True when `obs` is a tagged-node RTS decoded *at this member's vantage* —
/// the local round clock a lying member fabricates against.
fn is_tagged_rts_at(obs: &Obs, tagged: NodeId, vantage: NodeId) -> bool {
    match obs {
        Obs::Decoded { at, frame, .. } => *at == vantage && frame.src == tagged && frame.is_rts(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> MonitorConfig {
        MonitorConfig {
            sample_size: 10,
            ..MonitorConfig::grid_paper(0, 1, 240.0)
        }
    }

    fn spec(k: usize) -> QuorumSpec {
        QuorumSpec::new(0, &[(1, 240.0), (2, 300.0), (3, 340.0)], template(), k)
    }

    fn acc(accuser: NodeId, suspect: NodeId) -> Accusation {
        Accusation {
            accuser,
            suspect,
            evidence: EvidenceKind::Statistical,
            score: 0.01,
            epoch: 0,
            at: SimTime::from_micros(5),
        }
    }

    #[test]
    fn clean_plan_builds_all_honest_members() {
        let q = spec(2).build();
        assert_eq!(q.k(), 2);
        assert_eq!(q.tagged(), 0);
        assert_eq!(q.byzantine_count(), 0);
        assert_eq!(q.roles().len(), 3);
        assert!(q.roles().iter().all(|&(_, r)| r == MonitorRole::Honest));
        assert!(!q.is_flagged());
        assert!(q.member_session(2).is_some());
        assert!(q.member_session(9).is_none());
    }

    #[test]
    fn k_is_clamped_to_at_least_one() {
        assert_eq!(spec(0).build().k(), 1);
    }

    #[test]
    fn quorum_faults_assign_roles_from_the_plan() {
        let plan = FaultPlan::parse("seed=3,lie=1.0").unwrap();
        let q = spec(2).with_faults(plan).build();
        assert_eq!(q.byzantine_count(), 3);
        assert!(q.roles().iter().all(|&(_, r)| r == MonitorRole::FalseAccuser));
    }

    #[test]
    fn votes_convict_on_the_kth_distinct_accuser() {
        let mut q = spec(2).build();
        q.tally(1, &acc(1, 0));
        assert!(!q.is_flagged());
        assert_eq!(q.votes_against(0), 1);
        // A duplicate accuser never double-counts.
        q.tally(1, &acc(1, 0));
        assert!(!q.is_flagged());
        q.tally(1, &acc(3, 0));
        assert!(q.is_flagged());
        assert_eq!(q.votes_against(0), 2);
    }

    #[test]
    fn byzantine_members_never_carry_the_verdict() {
        let plan = FaultPlan::parse("seed=3,mute=1.0").unwrap();
        let mut q = spec(1).with_faults(plan).build();
        assert_eq!(q.byzantine_count(), 3);
        // Every member is Mute: their private tallies convict, the quorum
        // verdict (honest members only) stays clean.
        q.tally(1, &acc(2, 0));
        assert!(!q.is_flagged());
        assert_eq!(q.votes_against(0), 0);
    }

    #[test]
    fn report_has_the_fixed_line_shape() {
        let mut q = spec(2).build();
        q.tally(1, &acc(1, 0));
        let r = q.report();
        assert!(r.starts_with("roles    : 3 monitor(s), 3 honest, 0 byzantine\n"), "{r}");
        assert!(r.contains("gossip   : 0 copies sent, 0 dropped, 0 delivered\n"), "{r}");
        assert!(r.contains("quorum   : 1 distinct accuser(s) against node 0 (k = 2)\n"), "{r}");
        assert!(r.ends_with("verdict  : node 0 is apparently well-behaved by 2-of-3 quorum\n"), "{r}");
    }

    #[test]
    fn lie_cadence_is_a_pure_function_of_the_plan() {
        let plan = FaultPlan::parse("seed=9,lie=1.0").unwrap();
        let a = QuorumSpec::new(0, &[(1, 240.0)], template(), 1)
            .with_faults(plan.clone())
            .build();
        let b = QuorumSpec::new(0, &[(1, 240.0)], template(), 1)
            .with_faults(plan)
            .build();
        assert_eq!(a.members[0].next_lie, b.members[0].next_lie);
        assert_eq!(a.members[0].lie_period, b.members[0].lie_period);
        assert!((1..=10).contains(&a.members[0].next_lie));
        assert!((10..=30).contains(&a.members[0].lie_period));
    }
}
