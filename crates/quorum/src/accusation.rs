//! The typed accusation message monitors gossip to each other.

use mg_detect::NodeId;
use mg_sim::SimTime;
use mg_trace::json::Json;

/// What kind of local evidence backs an [`Accusation`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvidenceKind {
    /// A deterministic check convicted the suspect; carries the stable
    /// snake_case tag of the violation kind (`"sequence_reuse"`,
    /// `"attempt_mismatch"`, `"blatant_timing"`).
    Deterministic(&'static str),
    /// A rank-sum test over the estimated back-off population rejected H0.
    Statistical,
}

impl EvidenceKind {
    /// Stable lowercase tag of the evidence family.
    pub fn tag(&self) -> &'static str {
        match self {
            EvidenceKind::Deterministic(_) => "deterministic",
            EvidenceKind::Statistical => "statistical",
        }
    }
}

/// One signed claim: "`accuser` holds evidence that `suspect` violates the
/// back-off rules".
///
/// The message is deliberately *small*: a quorum member shares its verdict
/// and the score backing it, never its raw sample population — the wire
/// cost per accusation is constant regardless of how long the accuser has
/// been monitoring.
#[derive(Clone, PartialEq, Debug)]
pub struct Accusation {
    /// The vantage making the claim.
    pub accuser: NodeId,
    /// The node being accused.
    pub suspect: NodeId,
    /// The evidence family backing the claim.
    pub evidence: EvidenceKind,
    /// The p-value of the rank-sum test that fired (0.0 for deterministic
    /// evidence — a deterministic conviction is certain by construction).
    pub score: f64,
    /// The accuser's own accusation sequence number, starting at 0. Lets a
    /// receiver spot duplicate gossip without comparing payloads.
    pub epoch: u64,
    /// Virtual instant the evidence was produced.
    pub at: SimTime,
}

impl Accusation {
    /// Deterministic JSON rendering (insertion-ordered keys, `mg_trace::json`
    /// float conventions) — the transcript line format.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("t", Json::from(self.at.as_nanos())),
            ("accuser", Json::from(self.accuser as u64)),
            ("suspect", Json::from(self.suspect as u64)),
            ("evidence", Json::Str(self.evidence.tag().into())),
        ];
        if let EvidenceKind::Deterministic(kind) = self.evidence {
            fields.push(("check", Json::Str(kind.into())));
        }
        fields.push(("score", Json::Num(self.score)));
        fields.push(("epoch", Json::from(self.epoch)));
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_keyed_in_order() {
        let a = Accusation {
            accuser: 3,
            suspect: 0,
            evidence: EvidenceKind::Statistical,
            score: 0.0042,
            epoch: 2,
            at: SimTime::from_micros(5),
        };
        assert_eq!(
            a.to_json().render(),
            "{\"t\":5000,\"accuser\":3,\"suspect\":0,\"evidence\":\"statistical\",\
             \"score\":0.0042,\"epoch\":2}"
        );
    }

    #[test]
    fn deterministic_evidence_names_its_check() {
        let a = Accusation {
            accuser: 1,
            suspect: 0,
            evidence: EvidenceKind::Deterministic("sequence_reuse"),
            score: 0.0,
            epoch: 0,
            at: SimTime::ZERO,
        };
        let line = a.to_json().render();
        assert!(line.contains("\"evidence\":\"deterministic\""), "{line}");
        assert!(line.contains("\"check\":\"sequence_reuse\""), "{line}");
        assert_eq!(a.evidence.tag(), "deterministic");
        assert_eq!(EvidenceKind::Statistical.tag(), "statistical");
    }
}
