//! Typed trace records.
//!
//! Every instrumented subsystem emits [`Event`]s — small `Copy` structs
//! stamped with the **virtual** simulation time in nanoseconds. Wall-clock
//! time never enters the journal, which is what keeps equal-seed exports
//! byte-identical.

use crate::json::Json;

/// The subsystem an event originates from, used for level filtering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Subsystem {
    /// The discrete-event scheduler (`mg-sim`).
    Sched,
    /// The shared radio medium (`mg-phy`).
    Phy,
    /// The DCF MAC state machines (`mg-dcf`).
    Mac,
    /// The network/world layer (`mg-net`).
    Net,
    /// The back-off violation monitor (`mg-detect`).
    Monitor,
    /// Deterministic fault injection (`mg-fault`).
    Fault,
    /// The collaborative-detection gossip layer (`mg-quorum`).
    Quorum,
}

/// Number of subsystems (size of the per-subsystem level table).
pub const SUBSYSTEM_COUNT: usize = 7;

impl Subsystem {
    /// Table index for per-subsystem level filtering.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase tag used in JSONL output.
    pub fn tag(self) -> &'static str {
        match self {
            Subsystem::Sched => "sched",
            Subsystem::Phy => "phy",
            Subsystem::Mac => "mac",
            Subsystem::Net => "net",
            Subsystem::Monitor => "monitor",
            Subsystem::Fault => "fault",
            Subsystem::Quorum => "quorum",
        }
    }
}

/// Verbosity level for a subsystem's journal stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Emit nothing.
    Off,
    /// Emit the protocol-relevant events (frames, violations, packets).
    #[default]
    Info,
    /// Additionally emit high-rate internals (dispatches, channel edges).
    Debug,
}

/// The frame class carried by a MAC tx/rx event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameLabel {
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// A data frame.
    Data,
    /// An acknowledgement.
    Ack,
}

impl FrameLabel {
    /// Short lowercase tag used in JSONL output.
    pub fn tag(self) -> &'static str {
        match self {
            FrameLabel::Rts => "rts",
            FrameLabel::Cts => "cts",
            FrameLabel::Data => "data",
            FrameLabel::Ack => "ack",
        }
    }
}

/// The payload of a trace record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// The scheduler dispatched the event with this sequence number.
    SchedDispatch {
        /// Monotonic scheduler sequence number.
        seq: u64,
    },
    /// A node's carrier-sense state flipped.
    ChannelEdge {
        /// `true` when the channel just became busy at this node.
        busy: bool,
    },
    /// A MAC began transmitting a frame.
    TxStart {
        /// What kind of frame went on the air.
        frame: FrameLabel,
        /// Destination node, if the frame is addressed.
        dst: Option<usize>,
    },
    /// A MAC decoded a frame addressed to (or overheard by) it.
    RxDecoded {
        /// The transmitting node.
        src: usize,
        /// What kind of frame was decoded.
        frame: FrameLabel,
    },
    /// A reception was garbled by overlapping transmissions.
    Collision,
    /// A back-off countdown froze because the channel went busy.
    BackoffFreeze {
        /// Slots still outstanding when the countdown froze.
        remaining_slots: u16,
    },
    /// A frozen back-off countdown resumed.
    BackoffResume {
        /// Slots re-armed for the resumed countdown.
        slots: u16,
    },
    /// The network layer queued a new packet at a node.
    Enqueue {
        /// Workspace-unique packet id.
        sdu: u64,
    },
    /// A packet left the system (delivered or dropped).
    PacketDone {
        /// Workspace-unique packet id.
        sdu: u64,
        /// `true` when the packet reached its destination.
        delivered: bool,
    },
    /// The monitor paired a dictated/estimated back-off sample.
    MonitorSample {
        /// Slots the protocol dictated.
        dictated: f64,
        /// Slots the monitor estimated from the air.
        estimated: f64,
    },
    /// The monitor ran a rank-sum test over a sample batch.
    MonitorTest {
        /// The test's p-value.
        p: f64,
        /// `true` when the null (compliance) was rejected.
        reject: bool,
    },
    /// The monitor flagged a protocol violation.
    MonitorViolation {
        /// Stable violation-kind tag (e.g. `"blatant_countdown"`).
        kind: &'static str,
    },
    /// The monitor classified an anomalous observation as uncertain and
    /// withheld a deterministic verdict (statistical path still runs).
    MonitorUncertain {
        /// The deterministic check the observation would have tripped.
        kind: &'static str,
    },
    /// Fault injection ate a frame the monitor would have decoded.
    FaultDrop {
        /// Which fault ate it (e.g. `"loss"`, `"burst-loss"`, `"deaf"`).
        cause: &'static str,
    },
    /// Fault injection flipped commitment bits in an observed tagged RTS.
    FaultCorrupt {
        /// Number of bits flipped.
        bits: u32,
    },
    /// A monitor broadcast an accusation on the gossip channel (the event's
    /// node is the accuser).
    AccusationSent {
        /// The accused node.
        suspect: usize,
    },
    /// The gossip channel lost an accusation in flight (the event's node is
    /// the receiver that never heard it).
    AccusationDropped {
        /// The accused node.
        suspect: usize,
    },
    /// An accusation arrived at a monitor (the event's node is the
    /// receiver).
    AccusationDelivered {
        /// The accused node.
        suspect: usize,
    },
    /// A monitor's suspicion set reached the conviction quorum (the event's
    /// node is the convicting monitor).
    QuorumConvicted {
        /// The convicted node.
        suspect: usize,
        /// Distinct accusers backing the conviction.
        votes: usize,
    },
}

impl EventKind {
    /// The subsystem this kind belongs to.
    pub fn subsystem(&self) -> Subsystem {
        match self {
            EventKind::SchedDispatch { .. } => Subsystem::Sched,
            EventKind::ChannelEdge { .. } => Subsystem::Phy,
            EventKind::TxStart { .. }
            | EventKind::RxDecoded { .. }
            | EventKind::Collision
            | EventKind::BackoffFreeze { .. }
            | EventKind::BackoffResume { .. } => Subsystem::Mac,
            EventKind::Enqueue { .. } | EventKind::PacketDone { .. } => Subsystem::Net,
            EventKind::MonitorSample { .. }
            | EventKind::MonitorTest { .. }
            | EventKind::MonitorViolation { .. }
            | EventKind::MonitorUncertain { .. } => Subsystem::Monitor,
            EventKind::FaultDrop { .. } | EventKind::FaultCorrupt { .. } => Subsystem::Fault,
            EventKind::AccusationSent { .. }
            | EventKind::AccusationDropped { .. }
            | EventKind::AccusationDelivered { .. }
            | EventKind::QuorumConvicted { .. } => Subsystem::Quorum,
        }
    }

    /// The minimum level at which this kind is journaled.
    pub fn level(&self) -> Level {
        match self {
            EventKind::SchedDispatch { .. } | EventKind::ChannelEdge { .. } => Level::Debug,
            _ => Level::Info,
        }
    }

    /// Short lowercase tag used in JSONL output.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SchedDispatch { .. } => "dispatch",
            EventKind::ChannelEdge { .. } => "channel_edge",
            EventKind::TxStart { .. } => "tx_start",
            EventKind::RxDecoded { .. } => "rx_decoded",
            EventKind::Collision => "collision",
            EventKind::BackoffFreeze { .. } => "backoff_freeze",
            EventKind::BackoffResume { .. } => "backoff_resume",
            EventKind::Enqueue { .. } => "enqueue",
            EventKind::PacketDone { .. } => "packet_done",
            EventKind::MonitorSample { .. } => "sample",
            EventKind::MonitorTest { .. } => "test",
            EventKind::MonitorViolation { .. } => "violation",
            EventKind::MonitorUncertain { .. } => "uncertain",
            EventKind::FaultDrop { .. } => "drop",
            EventKind::FaultCorrupt { .. } => "corrupt",
            EventKind::AccusationSent { .. } => "accusation_sent",
            EventKind::AccusationDropped { .. } => "accusation_dropped",
            EventKind::AccusationDelivered { .. } => "accusation_delivered",
            EventKind::QuorumConvicted { .. } => "quorum_convicted",
        }
    }
}

/// One journal record: a timestamped, optionally node-scoped [`EventKind`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Virtual simulation time in nanoseconds.
    pub t_ns: u64,
    /// The node the event concerns, when it is node-scoped.
    pub node: Option<usize>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the record as one deterministic JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::with_capacity(6);
        fields.push(("t".into(), Json::from(self.t_ns)));
        if let Some(node) = self.node {
            fields.push(("node".into(), Json::from(node as u64)));
        }
        fields.push(("sub".into(), Json::from(self.kind.subsystem().tag())));
        fields.push(("kind".into(), Json::from(self.kind.tag())));
        match self.kind {
            EventKind::SchedDispatch { seq } => {
                fields.push(("seq".into(), Json::from(seq)));
            }
            EventKind::ChannelEdge { busy } => {
                fields.push(("busy".into(), Json::Bool(busy)));
            }
            EventKind::TxStart { frame, dst } => {
                fields.push(("frame".into(), Json::from(frame.tag())));
                if let Some(dst) = dst {
                    fields.push(("dst".into(), Json::from(dst as u64)));
                }
            }
            EventKind::RxDecoded { src, frame } => {
                fields.push(("src".into(), Json::from(src as u64)));
                fields.push(("frame".into(), Json::from(frame.tag())));
            }
            EventKind::Collision => {}
            EventKind::BackoffFreeze { remaining_slots } => {
                fields.push(("remaining_slots".into(), Json::from(remaining_slots as u64)));
            }
            EventKind::BackoffResume { slots } => {
                fields.push(("slots".into(), Json::from(slots as u64)));
            }
            EventKind::Enqueue { sdu } => {
                fields.push(("sdu".into(), Json::from(sdu)));
            }
            EventKind::PacketDone { sdu, delivered } => {
                fields.push(("sdu".into(), Json::from(sdu)));
                fields.push(("delivered".into(), Json::Bool(delivered)));
            }
            EventKind::MonitorSample { dictated, estimated } => {
                fields.push(("dictated".into(), Json::Num(dictated)));
                fields.push(("estimated".into(), Json::Num(estimated)));
            }
            EventKind::MonitorTest { p, reject } => {
                fields.push(("p".into(), Json::Num(p)));
                fields.push(("reject".into(), Json::Bool(reject)));
            }
            EventKind::MonitorViolation { kind } => {
                fields.push(("violation".into(), Json::from(kind)));
            }
            EventKind::MonitorUncertain { kind } => {
                fields.push(("check".into(), Json::from(kind)));
            }
            EventKind::FaultDrop { cause } => {
                fields.push(("cause".into(), Json::from(cause)));
            }
            EventKind::FaultCorrupt { bits } => {
                fields.push(("bits".into(), Json::from(bits as u64)));
            }
            EventKind::AccusationSent { suspect }
            | EventKind::AccusationDropped { suspect }
            | EventKind::AccusationDelivered { suspect } => {
                fields.push(("suspect".into(), Json::from(suspect as u64)));
            }
            EventKind::QuorumConvicted { suspect, votes } => {
                fields.push(("suspect".into(), Json::from(suspect as u64)));
                fields.push(("votes".into(), Json::from(votes as u64)));
            }
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_expected_subsystems_and_levels() {
        let e = EventKind::SchedDispatch { seq: 7 };
        assert_eq!(e.subsystem(), Subsystem::Sched);
        assert_eq!(e.level(), Level::Debug);

        let e = EventKind::TxStart { frame: FrameLabel::Rts, dst: Some(1) };
        assert_eq!(e.subsystem(), Subsystem::Mac);
        assert_eq!(e.level(), Level::Info);

        let e = EventKind::MonitorViolation { kind: "blatant_countdown" };
        assert_eq!(e.subsystem(), Subsystem::Monitor);
        assert_eq!(e.level(), Level::Info);

        let e = EventKind::MonitorUncertain { kind: "attempt_mismatch" };
        assert_eq!(e.subsystem(), Subsystem::Monitor);
        assert_eq!(e.level(), Level::Info);

        let e = EventKind::FaultDrop { cause: "deaf" };
        assert_eq!(e.subsystem(), Subsystem::Fault);
        assert_eq!(e.level(), Level::Info);

        let e = EventKind::FaultCorrupt { bits: 3 };
        assert_eq!(e.subsystem(), Subsystem::Fault);
        assert_eq!(Subsystem::Fault.tag(), "fault");

        let e = EventKind::AccusationSent { suspect: 4 };
        assert_eq!(e.subsystem(), Subsystem::Quorum);
        assert_eq!(e.level(), Level::Info);
        assert_eq!(Subsystem::Quorum.tag(), "quorum");

        let e = EventKind::QuorumConvicted { suspect: 4, votes: 3 };
        assert_eq!(e.subsystem(), Subsystem::Quorum);
        assert_eq!(e.tag(), "quorum_convicted");
    }

    #[test]
    fn quorum_events_render_their_fields() {
        let ev = Event {
            t_ns: 42,
            node: Some(6),
            kind: EventKind::AccusationDelivered { suspect: 2 },
        };
        assert_eq!(
            ev.to_json().render(),
            "{\"t\":42,\"node\":6,\"sub\":\"quorum\",\"kind\":\"accusation_delivered\",\"suspect\":2}"
        );
        let ev = Event {
            t_ns: 43,
            node: Some(6),
            kind: EventKind::QuorumConvicted { suspect: 2, votes: 3 },
        };
        assert_eq!(
            ev.to_json().render(),
            "{\"t\":43,\"node\":6,\"sub\":\"quorum\",\"kind\":\"quorum_convicted\",\"suspect\":2,\"votes\":3}"
        );
    }

    #[test]
    fn json_rendering_is_compact_and_ordered() {
        let ev = Event {
            t_ns: 1_500,
            node: Some(3),
            kind: EventKind::TxStart { frame: FrameLabel::Data, dst: None },
        };
        assert_eq!(
            ev.to_json().render(),
            "{\"t\":1500,\"node\":3,\"sub\":\"mac\",\"kind\":\"tx_start\",\"frame\":\"data\"}"
        );

        let ev = Event {
            t_ns: 0,
            node: None,
            kind: EventKind::MonitorTest { p: 0.25, reject: false },
        };
        assert_eq!(
            ev.to_json().render(),
            "{\"t\":0,\"sub\":\"monitor\",\"kind\":\"test\",\"p\":0.25,\"reject\":false}"
        );

        let ev = Event {
            t_ns: 9,
            node: Some(4),
            kind: EventKind::FaultDrop { cause: "rts-drop" },
        };
        assert_eq!(
            ev.to_json().render(),
            "{\"t\":9,\"node\":4,\"sub\":\"fault\",\"kind\":\"drop\",\"cause\":\"rts-drop\"}"
        );
    }

    #[test]
    fn levels_order_off_info_debug() {
        assert!(Level::Off < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::default(), Level::Info);
    }
}
