//! The fixed-capacity ring buffer under the event journal.
//!
//! A [`Ring`] keeps the **most recent** `capacity` items: pushing into a
//! full ring overwrites the oldest entry and counts it as dropped. Iteration
//! is always oldest-to-newest, so an export after any number of wrap-arounds
//! is a contiguous suffix of the emission order — which, together with the
//! deterministic simulator, makes exports byte-identical across equal-seed
//! runs.

/// A fixed-capacity overwrite-oldest ring buffer.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest element once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates an empty ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            buf: Vec::new(),
            cap: capacity,
            start: 0,
            dropped: 0,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Items overwritten so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an item, overwriting the oldest one when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.start] = item;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.start..].iter().chain(self.buf[..self.start].iter())
    }

    /// Drops all items (the dropped count is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraps_keeping_the_most_recent() {
        let mut r = Ring::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn exact_fill_does_not_drop() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Ring::<u8>::new(0);
    }

    #[test]
    fn clear_empties_but_keeps_drop_count() {
        let mut r = Ring::new(2);
        for i in 0..5 {
            r.push(i);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 3);
        r.push(42);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![42]);
    }
}
