//! A tiny hand-rolled JSON codec for experiment results.
//!
//! The workspace builds with zero external dependencies (no `serde`); this
//! module implements the serialization the stack needs: a [`Json`] value
//! tree with a deterministic renderer (insertion-ordered object keys,
//! RFC 8259 string escaping, shortest-roundtrip numbers) and a strict
//! recursive-descent [`Json::parse`] for reading result-cache files back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`; JSON has none).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for an array of strings.
    pub fn strings(items: impl IntoIterator<Item = impl Into<String>>) -> Json {
        Json::Arr(items.into_iter().map(|s| Json::Str(s.into())).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document. Strict: exactly one value, nothing but
    /// whitespace around it, no trailing commas, RFC 8259 escapes only.
    ///
    /// Everything [`render`](Json::render) emits parses back to an equal
    /// value (non-finite numbers render as `null`, so they round-trip to
    /// `Json::Null`).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind `Json::Num`, if that's what this is.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, when it is one exactly (integral, in range).
    ///
    /// Numbers pass through `f64`, so integers stay exact up to 2⁵³.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The string behind `Json::Str`, if that's what this is.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items behind `Json::Arr`, if that's what this is.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The bool behind `Json::Bool`, if that's what this is.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` prints the shortest string that round-trips.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

/// Parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the paired escape.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            s.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).expect("input was a &str");
                    let c = text.chars().next().expect("peeked non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // RFC 8259: no leading zeros in the integer part.
        if self.peek() == Some(b'0') {
            self.pos += 1;
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("leading zero in number"));
            }
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(self.err("expected a digit"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"");
    }

    #[test]
    fn escaping_is_rfc8259() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render_in_order() {
        let v = Json::obj([
            ("title", "demo".into()),
            ("rows", Json::Arr(vec![Json::strings(["1", "2"]), Json::strings(["3", "4"])])),
            ("n", Json::from(2u64)),
        ]);
        assert_eq!(
            v.render(),
            "{\"title\":\"demo\",\"rows\":[[\"1\",\"2\"],[\"3\",\"4\"]],\"n\":2}"
        );
    }

    #[test]
    fn parse_roundtrips_render() {
        let v = Json::obj([
            ("title", "dem\"o\n".into()),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Num(0.1), Json::Num(-3.0), Json::Num(1e21)])),
            ("nested", Json::obj([("k", Json::from(42u64))])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_handles_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("é😀")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"\\x\"", "01", "--1",
            "{\"a\" 1}", "\"unterminated", "[1 2]", "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_pick_the_right_variant() {
        let v = Json::obj([("n", Json::Num(7.0)), ("s", "x".into())]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Bool(false).as_bool(), Some(false));
    }

    #[test]
    fn numbers_roundtrip_shortest() {
        assert_eq!(Json::Num(0.1).render(), "0.1");
        // Rust's `{}` prints large magnitudes in plain decimal (no exponent
        // form); what matters is that the text parses back to the same value.
        assert_eq!(
            Json::Num(1e21).render().parse::<f64>().unwrap(),
            1e21
        );
    }
}
