//! A tiny hand-rolled JSON writer for experiment results.
//!
//! The workspace builds with zero external dependencies (no `serde`), and
//! the only serialization the stack needs is *writing* result files — so
//! this module implements exactly that: a [`Json`] value tree with a
//! deterministic renderer (insertion-ordered object keys, RFC 8259 string
//! escaping, shortest-roundtrip numbers).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`; JSON has none).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for an array of strings.
    pub fn strings(items: impl IntoIterator<Item = impl Into<String>>) -> Json {
        Json::Arr(items.into_iter().map(|s| Json::Str(s.into())).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` prints the shortest string that round-trips.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"");
    }

    #[test]
    fn escaping_is_rfc8259() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render_in_order() {
        let v = Json::obj([
            ("title", "demo".into()),
            ("rows", Json::Arr(vec![Json::strings(["1", "2"]), Json::strings(["3", "4"])])),
            ("n", Json::from(2u64)),
        ]);
        assert_eq!(
            v.render(),
            "{\"title\":\"demo\",\"rows\":[[\"1\",\"2\"],[\"3\",\"4\"]],\"n\":2}"
        );
    }

    #[test]
    fn numbers_roundtrip_shortest() {
        assert_eq!(Json::Num(0.1).render(), "0.1");
        // Rust's `{}` prints large magnitudes in plain decimal (no exponent
        // form); what matters is that the text parses back to the same value.
        assert_eq!(
            Json::Num(1e21).render().parse::<f64>().unwrap(),
            1e21
        );
    }
}
