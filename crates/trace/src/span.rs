//! RAII wall-clock timing of coarse phases (build, run, analyze).
//!
//! Spans measure *host* time, so they are deliberately kept out of the
//! event journal — they land in [`Metrics`] and are only ever reported
//! through the metrics path, preserving byte-identical trace exports.

use std::time::Instant;

use crate::metrics::Metrics;

/// A scope timer that records its wall-clock duration into [`Metrics`] on drop.
#[derive(Debug)]
pub struct Span {
    metrics: Metrics,
    name: String,
    start: Instant,
}

impl Span {
    /// Starts timing `name`; the duration is recorded when the span drops.
    pub fn enter(metrics: &Metrics, name: impl Into<String>) -> Span {
        Span {
            metrics: metrics.clone(),
            name: name.into(),
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.metrics.record_span(&self.name, wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let m = Metrics::new(1);
        {
            let _s = Span::enter(&m, "phase");
        }
        let spans = m.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "phase");
    }

    #[test]
    fn span_on_disabled_metrics_is_silent() {
        let m = Metrics::disabled();
        {
            let _s = Span::enter(&m, "phase");
        }
        assert!(m.spans().is_empty());
    }
}
