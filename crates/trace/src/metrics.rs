//! Per-node counters and log-scale histograms behind a cheap shared handle.
//!
//! [`Metrics`] is a clonable handle around an optional `Arc`; when disabled
//! every recording method is a branch on `None` and nothing else, so leaving
//! the plumbing in place costs effectively nothing. Counters are atomics so
//! a handle can be shared freely; snapshots are plain `Copy` arrays that
//! merge across trials and render to JSON.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// The per-node counters tracked by [`Metrics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Frames put on the air by the MAC.
    TxFrames,
    /// Frames decoded cleanly.
    RxDecoded,
    /// Receptions garbled by collisions.
    RxGarbled,
    /// Back-off countdowns frozen by a busy channel.
    BackoffFreezes,
    /// Packets accepted into a MAC queue.
    Enqueued,
    /// Packets delivered end to end.
    Delivered,
    /// Packets dropped (queue overflow or retry exhaustion).
    Dropped,
    /// Dictated/estimated back-off pairs collected by monitors.
    MonitorSamples,
    /// Rank-sum tests run by monitors.
    MonitorTests,
    /// Protocol violations flagged by monitors.
    MonitorViolations,
    /// Sweep-engine result-cache hits (trials replayed from disk).
    CacheHits,
    /// Sweep-engine result-cache misses (trials actually simulated).
    CacheMisses,
    /// Cache entries found corrupt/truncated and degraded to misses.
    CacheCorrupt,
    /// Sweep grid cells poisoned by a panic or watchdog timeout.
    TrialErrors,
    /// Frames eaten by injected observation faults.
    FaultDrops,
    /// Tagged RTS frames bit-flipped by injected faults.
    FaultCorruptions,
    /// Anomalous observations the monitor withheld a verdict on.
    MonitorUncertain,
    /// Accusations broadcast on the gossip channel.
    AccusationsSent,
    /// Accusations lost in flight by the gossip channel.
    AccusationsDropped,
    /// Accusations that reached a receiving monitor.
    AccusationsDelivered,
    /// Suspicion sets that reached the conviction quorum.
    QuorumConvictions,
}

/// Number of counter kinds (size of a counter row).
pub const COUNTER_COUNT: usize = 21;

impl Counter {
    /// Row index of this counter.
    pub fn index(self) -> usize {
        self as usize
    }

    /// All counters, in row order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::TxFrames,
        Counter::RxDecoded,
        Counter::RxGarbled,
        Counter::BackoffFreezes,
        Counter::Enqueued,
        Counter::Delivered,
        Counter::Dropped,
        Counter::MonitorSamples,
        Counter::MonitorTests,
        Counter::MonitorViolations,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheCorrupt,
        Counter::TrialErrors,
        Counter::FaultDrops,
        Counter::FaultCorruptions,
        Counter::MonitorUncertain,
        Counter::AccusationsSent,
        Counter::AccusationsDropped,
        Counter::AccusationsDelivered,
        Counter::QuorumConvictions,
    ];

    /// Stable snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::TxFrames => "tx_frames",
            Counter::RxDecoded => "rx_decoded",
            Counter::RxGarbled => "rx_garbled",
            Counter::BackoffFreezes => "backoff_freezes",
            Counter::Enqueued => "enqueued",
            Counter::Delivered => "delivered",
            Counter::Dropped => "dropped",
            Counter::MonitorSamples => "monitor_samples",
            Counter::MonitorTests => "monitor_tests",
            Counter::MonitorViolations => "monitor_violations",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheCorrupt => "cache_corrupt",
            Counter::TrialErrors => "trial_errors",
            Counter::FaultDrops => "fault_drops",
            Counter::FaultCorruptions => "fault_corruptions",
            Counter::MonitorUncertain => "monitor_uncertain",
            Counter::AccusationsSent => "accusations_sent",
            Counter::AccusationsDropped => "accusations_dropped",
            Counter::AccusationsDelivered => "accusations_delivered",
            Counter::QuorumConvictions => "quorum_convictions",
        }
    }
}

/// Number of log2 buckets in a histogram.
pub const HISTO_BUCKETS: usize = 32;

/// Bucket index for a value: 0 holds zero, bucket `i` holds values with
/// `floor(log2(v)) == i - 1`, and the top bucket absorbs the tail.
pub fn histo_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
    }
}

#[derive(Debug)]
struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
}

impl Histo {
    fn new() -> Histo {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[histo_bucket(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> [u64; HISTO_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct MetricsInner {
    /// One counter row per node (row 0 doubles as the sink for un-scoped bumps).
    per_node: Vec<[AtomicU64; COUNTER_COUNT]>,
    /// End-to-end packet latency, nanoseconds, log2 buckets.
    latency_ns: Histo,
    /// Dictated back-off draws, slots, log2 buckets.
    backoff_slots: Histo,
    /// Named wall-clock phase timings (never exported into the journal).
    spans: Mutex<Vec<(String, u64)>>,
}

/// A cheap clonable metrics handle; disabled handles record nothing.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsInner>>,
}

impl Metrics {
    /// An enabled collector sized for `nodes` nodes.
    pub fn new(nodes: usize) -> Metrics {
        Metrics {
            inner: Some(Arc::new(MetricsInner {
                per_node: (0..nodes.max(1))
                    .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                    .collect(),
                latency_ns: Histo::new(),
                backoff_slots: Histo::new(),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A disabled handle: every recording call is a no-op.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// True when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments `counter` for `node` (out-of-range nodes land on row 0).
    #[inline]
    pub fn bump(&self, node: usize, counter: Counter) {
        if let Some(inner) = &self.inner {
            let row = inner.per_node.get(node).unwrap_or(&inner.per_node[0]);
            row[counter.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one end-to-end packet latency.
    #[inline]
    pub fn record_latency_ns(&self, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.latency_ns.record(ns);
        }
    }

    /// Records one dictated back-off draw (in slots).
    #[inline]
    pub fn record_backoff_slots(&self, slots: u64) {
        if let Some(inner) = &self.inner {
            inner.backoff_slots.record(slots);
        }
    }

    /// Records a named wall-clock span (used by [`crate::Span`]).
    pub fn record_span(&self, name: &str, wall_ns: u64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut spans) = inner.spans.lock() {
                spans.push((name.to_string(), wall_ns));
            }
        }
    }

    /// All spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<(String, u64)> {
        match &self.inner {
            Some(inner) => inner.spans.lock().map(|s| s.clone()).unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Reads one counter for one node (0 when disabled or out of range).
    pub fn node_counter(&self, node: usize, counter: Counter) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .per_node
                .get(node)
                .map(|row| row[counter.index()].load(Ordering::Relaxed))
                .unwrap_or(0),
            None => 0,
        }
    }

    /// A `Copy` snapshot of the totals and histograms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(inner) = &self.inner {
            for row in &inner.per_node {
                for (i, c) in row.iter().enumerate() {
                    snap.totals[i] += c.load(Ordering::Relaxed);
                }
            }
            snap.latency_ns = inner.latency_ns.snapshot();
            snap.backoff_slots = inner.backoff_slots.snapshot();
        }
        snap
    }
}

/// A plain-data summary of a [`Metrics`] collector.
///
/// Fixed-size arrays keep this `Copy`, so per-trial results that embed a
/// snapshot stay cheap to aggregate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Workspace-wide totals per [`Counter`] (indexed by `Counter::index`).
    pub totals: [u64; COUNTER_COUNT],
    /// Latency histogram, log2-nanosecond buckets.
    pub latency_ns: [u64; HISTO_BUCKETS],
    /// Back-off draw histogram, log2-slot buckets.
    pub backoff_slots: [u64; HISTO_BUCKETS],
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            totals: [0; COUNTER_COUNT],
            latency_ns: [0; HISTO_BUCKETS],
            backoff_slots: [0; HISTO_BUCKETS],
        }
    }
}

impl MetricsSnapshot {
    /// Adds another snapshot into this one, element-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for i in 0..COUNTER_COUNT {
            self.totals[i] += other.totals[i];
        }
        for i in 0..HISTO_BUCKETS {
            self.latency_ns[i] += other.latency_ns[i];
            self.backoff_slots[i] += other.backoff_slots[i];
        }
    }

    /// Reads one total.
    pub fn total(&self, counter: Counter) -> u64 {
        self.totals[counter.index()]
    }

    /// Renders the snapshot as a JSON object (histogram tails trimmed).
    pub fn to_json(&self) -> Json {
        let totals = Json::Obj(
            Counter::ALL
                .iter()
                .map(|c| (c.name().to_string(), Json::from(self.total(*c))))
                .collect(),
        );
        Json::obj([
            ("totals", totals),
            ("latency_ns_log2", histo_json(&self.latency_ns)),
            ("backoff_slots_log2", histo_json(&self.backoff_slots)),
        ])
    }

    /// Rebuilds a snapshot from [`to_json`](MetricsSnapshot::to_json) output
    /// (the result-cache round-trip). Unknown counter names are ignored and
    /// missing ones read as zero, so snapshots survive counter-set growth;
    /// `None` only for a structurally different value.
    pub fn from_json(v: &Json) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        let totals = v.get("totals")?;
        for c in Counter::ALL {
            if let Some(n) = totals.get(c.name()) {
                snap.totals[c.index()] = n.as_u64()?;
            }
        }
        snap.latency_ns = histo_from_json(v.get("latency_ns_log2")?)?;
        snap.backoff_slots = histo_from_json(v.get("backoff_slots_log2")?)?;
        Some(snap)
    }
}

fn histo_json(buckets: &[u64; HISTO_BUCKETS]) -> Json {
    let last = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    Json::Arr(buckets[..last].iter().map(|&c| Json::from(c)).collect())
}

fn histo_from_json(v: &Json) -> Option<[u64; HISTO_BUCKETS]> {
    let items = v.as_arr()?;
    if items.len() > HISTO_BUCKETS {
        return None;
    }
    let mut buckets = [0u64; HISTO_BUCKETS];
    for (i, item) in items.iter().enumerate() {
        buckets[i] = item.as_u64()?;
    }
    Some(buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        m.bump(0, Counter::TxFrames);
        m.record_latency_ns(100);
        m.record_span("x", 5);
        assert!(!m.is_enabled());
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.spans().is_empty());
    }

    #[test]
    fn bumps_land_on_the_right_node_and_total() {
        let m = Metrics::new(3);
        m.bump(1, Counter::TxFrames);
        m.bump(1, Counter::TxFrames);
        m.bump(2, Counter::Delivered);
        m.bump(99, Counter::Dropped); // out of range → row 0
        assert_eq!(m.node_counter(1, Counter::TxFrames), 2);
        assert_eq!(m.node_counter(0, Counter::Dropped), 1);
        let snap = m.snapshot();
        assert_eq!(snap.total(Counter::TxFrames), 2);
        assert_eq!(snap.total(Counter::Delivered), 1);
        assert_eq!(snap.total(Counter::Dropped), 1);
    }

    #[test]
    fn histo_buckets_are_log2() {
        assert_eq!(histo_bucket(0), 0);
        assert_eq!(histo_bucket(1), 1);
        assert_eq!(histo_bucket(2), 2);
        assert_eq!(histo_bucket(3), 2);
        assert_eq!(histo_bucket(4), 3);
        assert_eq!(histo_bucket(1023), 10);
        assert_eq!(histo_bucket(1024), 11);
        assert_eq!(histo_bucket(u64::MAX), HISTO_BUCKETS - 1);
    }

    #[test]
    fn snapshots_merge_elementwise() {
        let m = Metrics::new(1);
        m.bump(0, Counter::Enqueued);
        m.record_latency_ns(7);
        let mut a = m.snapshot();
        let b = m.snapshot();
        a.merge(&b);
        assert_eq!(a.total(Counter::Enqueued), 2);
        assert_eq!(a.latency_ns[histo_bucket(7)], 2);
    }

    #[test]
    fn snapshot_json_has_named_totals() {
        let m = Metrics::new(1);
        m.bump(0, Counter::MonitorViolations);
        let rendered = m.snapshot().to_json().render();
        assert!(rendered.contains("\"monitor_violations\":1"));
        assert!(rendered.contains("\"latency_ns_log2\":[]"));
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let m = Metrics::new(2);
        m.bump(0, Counter::TxFrames);
        m.bump(1, Counter::CacheHits);
        m.record_latency_ns(12345);
        m.record_backoff_slots(17);
        let snap = m.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // Structurally different values are rejected, not zero-filled.
        assert!(MetricsSnapshot::from_json(&Json::Null).is_none());
        assert!(MetricsSnapshot::from_json(&Json::obj([("totals", Json::Null)])).is_none());
    }

    #[test]
    fn quorum_counters_are_registered_and_snapshots_survive_counter_growth() {
        assert_eq!(Counter::ALL.len(), COUNTER_COUNT);
        assert_eq!(Counter::AccusationsSent.name(), "accusations_sent");
        assert_eq!(Counter::QuorumConvictions.name(), "quorum_convictions");
        // A snapshot serialized before the quorum counters existed (totals
        // object missing the new names) still decodes — new counters read 0.
        let m = Metrics::new(1);
        m.bump(0, Counter::TxFrames);
        let mut v = m.snapshot().to_json();
        if let Json::Obj(fields) = &mut v {
            if let Some((_, Json::Obj(totals))) = fields.iter_mut().find(|(k, _)| k == "totals") {
                totals.retain(|(name, _)| !name.starts_with("accusations_"));
            }
        }
        let back = MetricsSnapshot::from_json(&v).expect("old snapshots must decode");
        assert_eq!(back.total(Counter::TxFrames), 1);
        assert_eq!(back.total(Counter::AccusationsSent), 0);
    }

    #[test]
    fn spans_are_kept_in_order() {
        let m = Metrics::new(1);
        m.record_span("build", 10);
        m.record_span("run", 20);
        assert_eq!(m.spans(), vec![("build".to_string(), 10), ("run".to_string(), 20)]);
    }
}
