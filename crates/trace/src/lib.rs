//! `mg-trace` — zero-dependency structured observability for the stack.
//!
//! Three instruments, all free when switched off:
//!
//! * **Event journal** — a fixed-capacity ring buffer of typed records
//!   ([`Event`]) stamped with *virtual* time, filtered per subsystem by
//!   [`Level`], exported as deterministic JSONL. Equal seeds give
//!   byte-identical exports.
//! * **Metrics** — per-node atomic counters plus log-scale latency and
//!   back-off histograms behind a clonable [`Metrics`] handle; snapshots
//!   are `Copy` and merge across trials.
//! * **Spans** — RAII wall-clock timing of coarse phases ([`Span`]),
//!   reported only through metrics so they never perturb the journal.
//!
//! The simulation crates hold a [`Tracer`] and a [`Metrics`] handle and
//! call [`Tracer::emit`] at their interesting edges; both default to
//! disabled, where emission is a single branch.
//!
//! ```
//! use mg_trace::{EventKind, FrameLabel, Level, TraceConfig, Tracer};
//!
//! let tracer = Tracer::new(TraceConfig::default());
//! tracer.emit(1_000, Some(2), EventKind::TxStart { frame: FrameLabel::Rts, dst: Some(3) });
//! tracer.emit(2_000, Some(2), EventKind::SchedDispatch { seq: 9 }); // Debug: filtered out
//! assert_eq!(tracer.len(), 1);
//! assert!(tracer.to_jsonl().starts_with("{\"t\":1000"));
//! # assert_eq!(Tracer::disabled().len(), 0);
//! # let _ = Level::Off;
//! ```

#![warn(missing_docs)]

pub mod json;

mod event;
mod metrics;
mod ring;
mod span;

pub use event::{Event, EventKind, FrameLabel, Level, Subsystem, SUBSYSTEM_COUNT};
pub use metrics::{
    histo_bucket, Counter, Metrics, MetricsSnapshot, COUNTER_COUNT, HISTO_BUCKETS,
};
pub use ring::Ring;
pub use span::Span;

use std::cell::RefCell;
use std::rc::Rc;

/// Journal capacity and per-subsystem verbosity for a [`Tracer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained (oldest are overwritten past this).
    pub capacity: usize,
    /// Level for scheduler dispatch records.
    pub sched: Level,
    /// Level for PHY channel-edge records.
    pub phy: Level,
    /// Level for MAC frame/back-off records.
    pub mac: Level,
    /// Level for network packet-lifecycle records.
    pub net: Level,
    /// Level for monitor sample/test/violation records.
    pub monitor: Level,
    /// Level for fault-injection drop/corrupt records.
    pub fault: Level,
    /// Level for collaborative-detection gossip records.
    pub quorum: Level,
}

impl Default for TraceConfig {
    /// Protocol-level tracing: MAC, net, and monitor events; the high-rate
    /// scheduler and PHY streams stay off.
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 65_536,
            sched: Level::Off,
            phy: Level::Off,
            mac: Level::Info,
            net: Level::Info,
            monitor: Level::Info,
            fault: Level::Info,
            quorum: Level::Info,
        }
    }
}

impl TraceConfig {
    /// Everything on at `Debug` — used by determinism tests and deep dives.
    pub fn verbose() -> TraceConfig {
        TraceConfig {
            capacity: 65_536,
            sched: Level::Debug,
            phy: Level::Debug,
            mac: Level::Debug,
            net: Level::Debug,
            monitor: Level::Debug,
            fault: Level::Debug,
            quorum: Level::Debug,
        }
    }

    fn levels(&self) -> [Level; SUBSYSTEM_COUNT] {
        [
            self.sched,
            self.phy,
            self.mac,
            self.net,
            self.monitor,
            self.fault,
            self.quorum,
        ]
    }
}

#[derive(Debug)]
struct Journal {
    ring: Ring<Event>,
    levels: [Level; SUBSYSTEM_COUNT],
}

/// A clonable handle onto a shared event journal.
///
/// Cloning is how one journal is threaded through the scheduler, medium,
/// MACs, world, and monitors of a single simulation; a disabled handle
/// (the default) makes [`Tracer::emit`] a single branch.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<Journal>>>,
}

impl Tracer {
    /// An enabled tracer journaling per `config`.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(Journal {
                ring: Ring::new(config.capacity),
                levels: config.levels(),
            }))),
        }
    }

    /// A disabled handle: [`Tracer::emit`] is a no-op.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// True when this handle journals anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Journals `kind` at virtual time `t_ns`, subject to level filtering.
    #[inline]
    pub fn emit(&self, t_ns: u64, node: Option<usize>, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let mut journal = inner.borrow_mut();
            if kind.level() <= journal.levels[kind.subsystem().index()] {
                journal.ring.push(Event { t_ns, node, kind });
            }
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |j| j.borrow().ring.len())
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |j| j.borrow().ring.dropped())
    }

    /// A chronological copy of the retained events.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |j| j.borrow().ring.iter().copied().collect())
    }

    /// Renders the journal as JSONL — one deterministic object per line,
    /// each line newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_json().render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        t.emit(5, None, EventKind::Collision);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn default_config_filters_debug_and_off_subsystems() {
        let t = Tracer::new(TraceConfig::default());
        t.emit(1, None, EventKind::SchedDispatch { seq: 1 }); // sched Off
        t.emit(2, Some(0), EventKind::ChannelEdge { busy: true }); // phy Off
        t.emit(3, Some(0), EventKind::Collision); // mac Info
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].kind, EventKind::Collision);
    }

    #[test]
    fn verbose_config_keeps_debug_events() {
        let t = Tracer::new(TraceConfig::verbose());
        t.emit(1, None, EventKind::SchedDispatch { seq: 1 });
        t.emit(2, Some(0), EventKind::ChannelEdge { busy: true });
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clones_share_one_journal() {
        let t = Tracer::new(TraceConfig::default());
        let t2 = t.clone();
        t.emit(1, Some(0), EventKind::Collision);
        t2.emit(2, Some(1), EventKind::Collision);
        assert_eq!(t.len(), 2);
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let t = Tracer::new(TraceConfig::verbose());
        t.emit(1, None, EventKind::SchedDispatch { seq: 1 });
        t.emit(2, None, EventKind::SchedDispatch { seq: 2 });
        let out = t.to_jsonl();
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn ring_capacity_bounds_the_journal() {
        let cfg = TraceConfig { capacity: 4, ..TraceConfig::verbose() };
        let t = Tracer::new(cfg);
        for seq in 0..10 {
            t.emit(seq, None, EventKind::SchedDispatch { seq });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.events()[0].kind, EventKind::SchedDispatch { seq: 6 });
    }
}
