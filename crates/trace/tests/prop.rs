//! Property-based tests for the mg-trace journal and metrics
//! (mg-testkit harness): ring wrap-around, level filtering, and
//! counter monotonicity.

use mg_trace::{
    Counter, EventKind, FrameLabel, Level, Metrics, Ring, Subsystem, TraceConfig, Tracer,
    COUNTER_COUNT, HISTO_BUCKETS, SUBSYSTEM_COUNT,
};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};

fn arb_level(g: &mut Gen) -> Level {
    match g.u8_in(0..3) {
        0 => Level::Off,
        1 => Level::Info,
        _ => Level::Debug,
    }
}

fn arb_kind(g: &mut Gen) -> EventKind {
    let frame = |g: &mut Gen| match g.u8_in(0..4) {
        0 => FrameLabel::Rts,
        1 => FrameLabel::Cts,
        2 => FrameLabel::Data,
        _ => FrameLabel::Ack,
    };
    match g.u8_in(0..19) {
        0 => EventKind::SchedDispatch { seq: g.u64_in(0..1_000) },
        1 => EventKind::ChannelEdge { busy: g.bool() },
        2 => EventKind::TxStart {
            frame: frame(g),
            dst: if g.bool() { Some(g.usize_in(0..8)) } else { None },
        },
        3 => EventKind::RxDecoded { src: g.usize_in(0..8), frame: frame(g) },
        4 => EventKind::Collision,
        5 => EventKind::BackoffFreeze { remaining_slots: g.u16_in(0..1024) },
        6 => EventKind::BackoffResume { slots: g.u16_in(0..1024) },
        7 => EventKind::Enqueue { sdu: g.u64_in(0..1_000) },
        8 => EventKind::PacketDone { sdu: g.u64_in(0..1_000), delivered: g.bool() },
        9 => EventKind::MonitorSample { dictated: g.f64_in(0.0..32.0), estimated: g.f64_in(0.0..64.0) },
        10 => EventKind::MonitorTest { p: g.f64_in(0.0..1.0), reject: g.bool() },
        11 => EventKind::MonitorViolation { kind: "oversized_window" },
        12 => EventKind::MonitorUncertain { kind: "attempt_mismatch" },
        13 => EventKind::FaultDrop { cause: "loss" },
        14 => EventKind::FaultCorrupt { bits: g.u64_in(1..16) as u32 },
        15 => EventKind::AccusationSent { suspect: g.usize_in(0..8) },
        16 => EventKind::AccusationDropped { suspect: g.usize_in(0..8) },
        17 => EventKind::AccusationDelivered { suspect: g.usize_in(0..8) },
        _ => EventKind::QuorumConvicted {
            suspect: g.usize_in(0..8),
            votes: g.usize_in(1..8),
        },
    }
}

/// A ring holding at most `cap` items retains exactly the last
/// `min(n, cap)` of `n` pushes, in push order, and counts the rest
/// as dropped.
#[test]
fn ring_keeps_the_most_recent_suffix() {
    check("ring_keeps_the_most_recent_suffix", |g: &mut Gen| -> TkResult {
        let cap = g.usize_in(1..48);
        let n = g.usize_in(0..160);
        let mut r = Ring::new(cap);
        for i in 0..n as u64 {
            r.push(i);
        }
        tk_assert_eq!(r.capacity(), cap);
        tk_assert_eq!(r.len(), n.min(cap));
        tk_assert_eq!(r.dropped(), n.saturating_sub(cap) as u64);
        let got: Vec<u64> = r.iter().copied().collect();
        let want: Vec<u64> = ((n - n.min(cap)) as u64..n as u64).collect();
        tk_assert_eq!(got, want);
        Ok(())
    });
}

/// Interleaving pushes with clears never leaves more than the items
/// pushed since the last clear, and iteration stays chronological.
#[test]
fn ring_survives_clears() {
    check("ring_survives_clears", |g: &mut Gen| -> TkResult {
        let cap = g.usize_in(1..16);
        let mut r = Ring::new(cap);
        let mut since_clear = 0usize;
        for i in 0..g.usize_in(1..80) as u64 {
            if g.u8_in(0..8) == 0 {
                r.clear();
                since_clear = 0;
            } else {
                r.push(i);
                since_clear += 1;
            }
            tk_assert_eq!(r.len(), since_clear.min(cap));
            let got: Vec<u64> = r.iter().copied().collect();
            tk_assert!(got.windows(2).all(|w| w[0] < w[1]));
        }
        Ok(())
    });
}

/// A tracer journals exactly the events whose level passes its
/// subsystem's configured threshold — no more, no fewer, in emission
/// order.
#[test]
fn level_filtering_is_exact() {
    check("level_filtering_is_exact", |g: &mut Gen| -> TkResult {
        let cfg = TraceConfig {
            capacity: 4096, // larger than any sequence below: no wrap here
            sched: arb_level(g),
            phy: arb_level(g),
            mac: arb_level(g),
            net: arb_level(g),
            monitor: arb_level(g),
            fault: arb_level(g),
            quorum: arb_level(g),
        };
        let threshold = |s: Subsystem| match s {
            Subsystem::Sched => cfg.sched,
            Subsystem::Phy => cfg.phy,
            Subsystem::Mac => cfg.mac,
            Subsystem::Net => cfg.net,
            Subsystem::Monitor => cfg.monitor,
            Subsystem::Fault => cfg.fault,
            Subsystem::Quorum => cfg.quorum,
        };
        let tracer = Tracer::new(cfg);
        let mut expected: Vec<(u64, &'static str)> = Vec::new();
        for t in 0..g.usize_in(0..200) as u64 {
            let kind = arb_kind(g);
            if kind.level() <= threshold(kind.subsystem()) {
                expected.push((t, kind.tag()));
            }
            tracer.emit(t, Some(0), kind);
        }
        tk_assert_eq!(tracer.dropped(), 0);
        let got: Vec<(u64, &'static str)> = tracer
            .events()
            .iter()
            .map(|e| (e.t_ns, e.kind.tag()))
            .collect();
        tk_assert_eq!(got, expected);
        tk_assert_eq!(tracer.to_jsonl().lines().count(), expected.len());
        Ok(())
    });
}

/// Wrap-around composes with filtering: a small journal retains the
/// most recent `capacity` of the *admitted* events.
#[test]
fn journal_wraps_over_admitted_events() {
    check("journal_wraps_over_admitted_events", |g: &mut Gen| -> TkResult {
        let cap = g.usize_in(1..12);
        let cfg = TraceConfig {
            capacity: cap,
            sched: Level::Off, // dispatches are emitted below but never admitted
            ..TraceConfig::verbose()
        };
        let tracer = Tracer::new(cfg);
        let mut admitted = 0u64;
        for t in 0..g.usize_in(0..100) as u64 {
            if g.bool() {
                tracer.emit(t, None, EventKind::SchedDispatch { seq: t });
            } else {
                tracer.emit(t, Some(1), EventKind::Collision);
                admitted += 1;
            }
        }
        tk_assert_eq!(tracer.len() as u64, admitted.min(cap as u64));
        tk_assert_eq!(tracer.dropped(), admitted.saturating_sub(cap as u64));
        let ts: Vec<u64> = tracer.events().iter().map(|e| e.t_ns).collect();
        tk_assert!(ts.windows(2).all(|w| w[0] < w[1]));
        Ok(())
    });
}

/// Counters only ever grow, and the final snapshot equals an exact
/// tally of the bumps — with out-of-range nodes landing on row 0.
#[test]
fn counters_are_monotone_and_exact() {
    check("counters_are_monotone_and_exact", |g: &mut Gen| -> TkResult {
        let nodes = g.usize_in(1..5);
        let m = Metrics::new(nodes);
        let mut per_node = vec![[0u64; COUNTER_COUNT]; nodes];
        let mut prev = m.snapshot();
        for _ in 0..g.usize_in(0..120) {
            let node = g.usize_in(0..nodes + 2); // sometimes out of range
            let counter = Counter::ALL[g.usize_in(0..COUNTER_COUNT)];
            m.bump(node, counter);
            per_node[if node < nodes { node } else { 0 }][counter.index()] += 1;
            let snap = m.snapshot();
            for c in Counter::ALL {
                tk_assert!(snap.total(c) >= prev.total(c));
            }
            prev = snap;
        }
        for (node, row) in per_node.iter().enumerate() {
            for c in Counter::ALL {
                tk_assert_eq!(m.node_counter(node, c), row[c.index()]);
            }
        }
        for c in Counter::ALL {
            let want: u64 = per_node.iter().map(|row| row[c.index()]).sum();
            tk_assert_eq!(prev.total(c), want);
        }
        Ok(())
    });
}

/// Histograms conserve mass: every recording lands in exactly one
/// bucket, so the bucket sum equals the number of recordings.
#[test]
fn histograms_conserve_recordings() {
    check("histograms_conserve_recordings", |g: &mut Gen| -> TkResult {
        let m = Metrics::new(1);
        let n_lat = g.usize_in(0..60);
        for _ in 0..n_lat {
            m.record_latency_ns(g.u64_in(0..u64::MAX));
        }
        let n_bo = g.usize_in(0..60);
        for _ in 0..n_bo {
            m.record_backoff_slots(g.u64_in(0..1_024));
        }
        let snap = m.snapshot();
        tk_assert_eq!(snap.latency_ns.iter().sum::<u64>(), n_lat as u64);
        tk_assert_eq!(snap.backoff_slots.iter().sum::<u64>(), n_bo as u64);
        tk_assert_eq!(snap.latency_ns.len(), HISTO_BUCKETS);
        Ok(())
    });
}

/// A disabled tracer and disabled metrics absorb any workload without
/// retaining anything.
#[test]
fn disabled_handles_stay_inert() {
    check("disabled_handles_stay_inert", |g: &mut Gen| -> TkResult {
        let tracer = Tracer::disabled();
        let m = Metrics::disabled();
        for t in 0..g.usize_in(0..40) as u64 {
            tracer.emit(t, Some(0), arb_kind(g));
            m.bump(g.usize_in(0..4), Counter::ALL[g.usize_in(0..COUNTER_COUNT)]);
        }
        tk_assert!(tracer.is_empty());
        tk_assert_eq!(tracer.to_jsonl(), String::new());
        tk_assert_eq!(m.snapshot().totals, [0u64; COUNTER_COUNT]);
        let _ = SUBSYSTEM_COUNT; // the journal covers every subsystem above
        Ok(())
    });
}
