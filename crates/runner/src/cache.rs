//! The on-disk result cache: one JSON file per task, keyed by content.

use crate::key::CacheKey;
use mg_trace::json::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version of the cache files themselves (distinct from the
/// per-experiment schema version inside [`CacheKey`]).
const FORMAT: u64 = 1;

/// What the cache is allowed to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Read hits, write misses — the default.
    ReadWrite,
    /// Never read, always recompute and overwrite (`MG_CACHE=refresh`).
    Refresh,
    /// Bypass the cache entirely (`MG_CACHE=off`).
    Off,
}

impl CacheMode {
    /// Parses an `MG_CACHE` value. Accepts `on`/`off`/`refresh` (also
    /// `1`/`0`); anything else is an error naming the valid values.
    pub fn parse(s: &str) -> Result<CacheMode, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "on" | "1" => Ok(CacheMode::ReadWrite),
            "off" | "0" => Ok(CacheMode::Off),
            "refresh" => Ok(CacheMode::Refresh),
            other => Err(format!(
                "invalid MG_CACHE value {other:?}: expected \"on\", \"off\" or \"refresh\""
            )),
        }
    }
}

/// What a classified cache read found.
///
/// The distinction [`Runner`](crate::Runner) cares about: a [`Miss`] is the
/// normal cold path, while [`Corrupt`] means a file *exists* but cannot be
/// trusted — truncated JSON, an unreadable file, a stale format — and the
/// sweep should warn and recompute instead of aborting.
///
/// [`Miss`]: CacheLookup::Miss
/// [`Corrupt`]: CacheLookup::Corrupt
#[derive(Clone, Debug, PartialEq)]
pub enum CacheLookup {
    /// A verified entry; the payload decodes from here.
    Hit(Json),
    /// No entry (or reads disabled, or a benign hash collision).
    Miss,
    /// An entry exists but is unusable; the string says why.
    Corrupt(String),
}

/// A directory of content-keyed result files.
///
/// Layout: one `<fnv64(key) as hex>.json` file per task, each holding
/// `{"v": <format>, "key": <canonical key text>, "value": <result>}`.
/// Reads verify the format version *and* the full key text, so a hash
/// collision or a stale-schema file degrades to a miss, never a wrong
/// result. Writes go through a temp file + rename, so a sweep killed
/// mid-write leaves no torn entry and the finished points replay on resume.
pub struct Cache {
    dir: PathBuf,
    mode: CacheMode,
    tmp_seq: AtomicU64,
}

impl Cache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>, mode: CacheMode) -> Cache {
        Cache { dir: dir.into(), mode, tmp_seq: AtomicU64::new(0) }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The operating mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Short human description ("results/.cache, read-write").
    pub fn describe(&self) -> String {
        let mode = match self.mode {
            CacheMode::ReadWrite => "read-write",
            CacheMode::Refresh => "refresh",
            CacheMode::Off => "off",
        };
        format!("{}, {mode}", self.dir.display())
    }

    /// Loads the value cached under `key`, if the mode allows reads and a
    /// verified entry exists. Corrupt entries read as misses; use
    /// [`Cache::lookup`] to tell the two apart.
    pub fn load(&self, key: &CacheKey) -> Option<Json> {
        match self.lookup(key) {
            CacheLookup::Hit(v) => Some(v),
            CacheLookup::Miss | CacheLookup::Corrupt(_) => None,
        }
    }

    /// Classified read: distinguishes a verified hit, a genuine miss, and a
    /// corrupt entry (present but truncated/unreadable/stale-format).
    ///
    /// A key-text mismatch under a colliding hash is a [`CacheLookup::Miss`]
    /// — the file is healthy, it just belongs to a different task.
    pub fn lookup(&self, key: &CacheKey) -> CacheLookup {
        if self.mode != CacheMode::ReadWrite {
            return CacheLookup::Miss;
        }
        let path = self.dir.join(key.file_name());
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return CacheLookup::Corrupt(format!("unreadable: {e}")),
        };
        let doc = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => return CacheLookup::Corrupt(format!("unparseable: {e}")),
        };
        match doc.get("v").and_then(Json::as_u64) {
            Some(v) if v == FORMAT => {}
            Some(v) => return CacheLookup::Corrupt(format!("stale format version {v}")),
            None => return CacheLookup::Corrupt("missing format version".to_string()),
        }
        match (doc.get("key").and_then(Json::as_str), doc.get("value")) {
            (Some(k), Some(v)) if k == key.text() => CacheLookup::Hit(v.clone()),
            (Some(_), Some(_)) => CacheLookup::Miss, // hash collision — healthy file, other task
            _ => CacheLookup::Corrupt("missing key/value fields".to_string()),
        }
    }

    /// Fault-injection helper: truncates the entry stored under `key` to
    /// half its bytes, leaving exactly the torn-file shape
    /// [`Cache::lookup`] must degrade gracefully on. No-op when the entry
    /// does not exist.
    pub fn truncate_entry(&self, key: &CacheKey) {
        let path = self.dir.join(key.file_name());
        if let Ok(bytes) = std::fs::read(&path) {
            let _ = std::fs::write(&path, &bytes[..bytes.len() / 2]);
        }
    }

    /// Stores `value` under `key` (no-op when the mode is `Off`).
    ///
    /// Best-effort: the cache is an accelerator, so I/O failures (read-only
    /// disk, full disk) are swallowed and the sweep simply stays uncached.
    pub fn store(&self, key: &CacheKey, value: &Json) {
        if self.mode == CacheMode::Off {
            return;
        }
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let doc = Json::obj([
            ("v", Json::from(FORMAT)),
            ("key", Json::Str(key.text().to_string())),
            ("value", value.clone()),
        ]);
        // Unique temp name per write (pid + sequence) so concurrent workers
        // never clobber each other's in-flight file; rename is atomic.
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, doc.render()).is_ok()
            && std::fs::rename(&tmp, self.dir.join(key.file_name())).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mg-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_then_load_roundtrips_bytes() {
        let dir = tmp_dir("roundtrip");
        let c = Cache::new(dir.clone(), CacheMode::ReadWrite);
        let k = CacheKey::new("t", 1).field("seed", 9u64);
        let v = Json::obj([("rho", Json::Num(0.125)), ("tests", Json::from(4u64))]);
        c.store(&k, &v);
        let back = c.load(&k).expect("stored entry loads");
        assert_eq!(back, v);
        assert_eq!(back.render(), v.render(), "byte-for-byte identical");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn key_text_is_verified_on_load() {
        let dir = tmp_dir("verify");
        let c = Cache::new(dir.clone(), CacheMode::ReadWrite);
        let k = CacheKey::new("t", 1).field("seed", 1u64);
        c.store(&k, &Json::from(1u64));
        // Overwrite the file with a mismatched key but the same file name.
        let forged = Json::obj([
            ("v", Json::from(1u64)),
            ("key", Json::Str("experiment=other;schema=1".into())),
            ("value", Json::from(2u64)),
        ]);
        std::fs::write(dir.join(k.file_name()), forged.render()).unwrap();
        assert_eq!(c.load(&k), None, "mismatched key text must read as a miss");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_files_read_as_misses() {
        let dir = tmp_dir("corrupt");
        let c = Cache::new(dir.clone(), CacheMode::ReadWrite);
        let k = CacheKey::new("t", 1).field("seed", 2u64);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(k.file_name()), "{not json").unwrap();
        assert_eq!(c.load(&k), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn lookup_classifies_hit_miss_and_corrupt() {
        let dir = tmp_dir("classify");
        let c = Cache::new(dir.clone(), CacheMode::ReadWrite);
        let k = CacheKey::new("t", 1).field("seed", 3u64);
        assert_eq!(c.lookup(&k), CacheLookup::Miss, "absent file is a plain miss");

        c.store(&k, &Json::from(42u64));
        assert_eq!(c.lookup(&k), CacheLookup::Hit(Json::from(42u64)));

        c.truncate_entry(&k);
        match c.lookup(&k) {
            CacheLookup::Corrupt(reason) => assert!(reason.contains("unparseable"), "{reason}"),
            other => panic!("truncated entry must classify as corrupt, got {other:?}"),
        }
        assert_eq!(c.load(&k), None, "load degrades corrupt to a miss");

        // A stale format version is corrupt, not silently wrong.
        let stale = Json::obj([
            ("v", Json::from(999u64)),
            ("key", Json::Str(k.text().to_string())),
            ("value", Json::from(1u64)),
        ]);
        std::fs::write(dir.join(k.file_name()), stale.render()).unwrap();
        assert!(matches!(c.lookup(&k), CacheLookup::Corrupt(_)));

        // A key-text mismatch (hash collision shape) stays a healthy miss.
        let forged = Json::obj([
            ("v", Json::from(FORMAT)),
            ("key", Json::Str("experiment=other;schema=1".into())),
            ("value", Json::from(2u64)),
        ]);
        std::fs::write(dir.join(k.file_name()), forged.render()).unwrap();
        assert_eq!(c.lookup(&k), CacheLookup::Miss);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mode_parsing_is_strict() {
        assert_eq!(CacheMode::parse("on"), Ok(CacheMode::ReadWrite));
        assert_eq!(CacheMode::parse(""), Ok(CacheMode::ReadWrite));
        assert_eq!(CacheMode::parse("OFF"), Ok(CacheMode::Off));
        assert_eq!(CacheMode::parse("refresh"), Ok(CacheMode::Refresh));
        assert!(CacheMode::parse("yes").is_err());
        assert!(CacheMode::parse("maybe").unwrap_err().contains("MG_CACHE"));
    }
}
