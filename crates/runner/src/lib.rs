//! # mg-runner — the sweep-execution engine
//!
//! Parameter sweeps (PM × sample-size × seed grids, one simulation per
//! point) are the cost center of every experiment in this workspace. This
//! crate makes them cheap and resumable with three pieces, all
//! zero-dependency:
//!
//! * [`run_grid`] — a **flat task grid**: the caller declares every task up
//!   front and one work-stealing pool drains them, so cores never idle at
//!   parameter-point boundaries and slow tasks overlap with fast ones.
//!   Results come back in task order, deterministically.
//! * [`CacheKey`] — a **canonical content key** for a task: named fields
//!   (rendered through `Debug`, so every config field participates) behind
//!   an FNV-1a 64-bit hash. Any field change changes the key.
//! * [`Cache`] + [`Runner`] — a **content-keyed result cache**: completed
//!   task results serialize to `<dir>/<fnv64>.json` via [`mg_trace::json`],
//!   so re-running a sweep replays cached points and an interrupted sweep
//!   resumes where it stopped. Hits and misses are counted through a
//!   [`Metrics`] handle owned by the runner — never mixed into the trial
//!   results themselves, which keeps cold and warm sweep outputs
//!   byte-identical.
//!
//! ## Composing with the sharded world engine
//!
//! Runner-level parallelism is *across cells*: one simulation per thread,
//! `available_parallelism()` threads. The world engine's region sharding
//! (`mg_net`'s `Shards::Regions(n)`) is parallelism *within* one cell. The
//! two compose, but their product is what actually lands on the machine:
//! a sweep saturating `T` cores where every cell also runs `n` region
//! lanes asks for up to `T × n` runnable threads — oversubscription that
//! slows both layers down without changing any result (sharding is
//! byte-identical to serial). Rule of thumb: give the *outer* layer the
//! cores. Sweeps of many small worlds should run `Shards::Serial` cells;
//! reserve `Regions(n)` for one huge world that is the only tenant (e.g.
//! `bench_world_scale`'s sharded cells, which run sequentially).
//!
//! ```
//! use mg_runner::{Cache, CacheKey, CacheMode, Codec, Runner};
//! use mg_trace::json::Json;
//!
//! let dir = std::env::temp_dir().join("mg-runner-doc");
//! let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
//! let tasks: Vec<u64> = (0..8).collect();
//! let codec = Codec {
//!     encode: |r: &u64| Json::from(*r),
//!     decode: |j: &Json| j.as_u64(),
//! };
//! let key = |t: &u64| CacheKey::new("doc", 1).field("task", t);
//! let out = runner.sweep(&tasks, key, codec, |&t| t * t);
//! assert_eq!(out[3], 9);
//! let again = runner.sweep(&tasks, key, codec, |_| unreachable!("all cached"));
//! assert_eq!(out, again);
//! # let _ = std::fs::remove_dir_all(dir);
//! ```

#![warn(missing_docs)]

mod cache;
mod grid;
mod key;

pub use cache::{Cache, CacheLookup, CacheMode};
pub use grid::run_grid;
pub use key::{fnv64, CacheKey};
pub use mg_fault::RunnerFaults;

use mg_trace::json::Json;
use mg_trace::{Counter, Metrics};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// How a result type crosses the cache boundary: a pair of plain function
/// pointers (so the codec stays `Copy` and trivially `Sync`).
///
/// `decode` returning `None` marks the cached value as unusable — the runner
/// recomputes and overwrites it, so a decoder can be strict.
pub struct Codec<R> {
    /// Serializes a result for storage.
    pub encode: fn(&R) -> Json,
    /// Rebuilds a result from storage; `None` means "recompute".
    pub decode: fn(&Json) -> Option<R>,
}

impl<R> Clone for Codec<R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R> Copy for Codec<R> {}

/// Why a grid cell failed instead of producing a result.
///
/// A failed cell poisons only itself: the pool keeps draining, every other
/// cell completes normally, and nothing is cached for the failed key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialError {
    /// The task's run closure panicked.
    Panicked {
        /// Flat grid index of the task.
        task: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The task exceeded the watchdog timeout on every allowed attempt.
    TimedOut {
        /// Flat grid index of the task.
        task: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The per-attempt timeout that was exceeded.
        timeout_ms: u64,
    },
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialError::Panicked { task, message } => {
                write!(f, "task {task} panicked: {message}")
            }
            TrialError::TimedOut { task, attempts, timeout_ms } => {
                write!(f, "task {task} timed out ({attempts} attempts × {timeout_ms} ms)")
            }
        }
    }
}

/// Watchdog settings for [`Runner::try_sweep`].
///
/// With a timeout set, each task attempt runs on its own thread — spawned
/// on the *sweep's* [`std::thread::scope`], not a detached thread — and is
/// abandoned (not killed — safe Rust cannot kill a thread) once the
/// deadline passes. The worker that was watching it moves on immediately:
/// every other cell completes and the hung cell is reported as
/// [`TrialError::TimedOut`]. Because the scope joins *all* of its threads
/// on exit, a *genuinely* infinite task still delays `try_sweep`'s return;
/// simulated hangs are finite, so sweeps under fault injection always
/// terminate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepPolicy {
    /// Per-attempt wall-clock timeout; `None` disables the watchdog.
    pub timeout_ms: Option<u64>,
    /// Extra attempts granted after a timeout (panics never retry — they
    /// are deterministic).
    pub retries: u32,
}

/// Executes task grids against a result cache, counting hits and misses.
pub struct Runner {
    cache: Cache,
    metrics: Metrics,
    faults: RunnerFaults,
    policy: SweepPolicy,
}

impl Runner {
    /// A runner over `cache`. The hit/miss metrics are the runner's own —
    /// they never leak into task results.
    pub fn new(cache: Cache) -> Runner {
        Runner {
            cache,
            metrics: Metrics::new(1),
            faults: RunnerFaults::default(),
            policy: SweepPolicy::default(),
        }
    }

    /// Arms deterministic runner-layer fault injection (worker panics,
    /// simulated hangs, post-store cache corruption), keyed by task index.
    pub fn with_faults(mut self, faults: RunnerFaults) -> Runner {
        if self.policy.timeout_ms.is_none() {
            self.policy.timeout_ms = faults.timeout_ms;
            self.policy.retries = faults.retries;
        }
        self.faults = faults;
        self
    }

    /// Sets the watchdog policy for [`Runner::try_sweep`].
    pub fn with_policy(mut self, policy: SweepPolicy) -> Runner {
        self.policy = policy;
        self
    }

    /// The cache this runner consults.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The runner's own metrics handle (cache hit/miss counters).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Tasks replayed from the cache so far.
    pub fn hits(&self) -> u64 {
        self.metrics.node_counter(0, Counter::CacheHits)
    }

    /// Tasks actually computed so far.
    pub fn misses(&self) -> u64 {
        self.metrics.node_counter(0, Counter::CacheMisses)
    }

    /// Cache entries found corrupt and degraded to misses so far.
    pub fn corrupt(&self) -> u64 {
        self.metrics.node_counter(0, Counter::CacheCorrupt)
    }

    /// Grid cells poisoned by a panic or watchdog timeout so far.
    pub fn errors(&self) -> u64 {
        self.metrics.node_counter(0, Counter::TrialErrors)
    }

    /// One-line human summary of the cache traffic, for stderr.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} misses, {} corrupt ({})",
            self.hits(),
            self.misses(),
            self.corrupt(),
            self.cache.describe()
        )
    }

    /// Drains `tasks` through the work-stealing pool, consulting the cache
    /// around each one.
    ///
    /// For every task: build its [`CacheKey`], try [`Cache::load`] +
    /// `codec.decode` (a hit bypasses `run` entirely), otherwise call
    /// `run` and store the encoded result. Results return in task order —
    /// cached and computed tasks are indistinguishable in the output.
    ///
    /// A failed cell (panic or timeout, see [`Runner::try_sweep`]) panics
    /// here with the cell's [`TrialError`]; callers that want to keep the
    /// healthy cells use `try_sweep` directly.
    pub fn sweep<T, R>(
        &self,
        tasks: &[T],
        key: impl Fn(&T) -> CacheKey + Sync,
        codec: Codec<R>,
        run: impl Fn(&T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.try_sweep(tasks, key, codec, run)
            .into_iter()
            .map(|cell| cell.unwrap_or_else(|e| panic!("sweep failed: {e}")))
            .collect()
    }

    /// Fault-tolerant sweep: like [`Runner::sweep`], but a panicking or
    /// hung task poisons only its own grid cell.
    ///
    /// Each cell comes back as `Ok(result)` or `Err(TrialError)`; the pool
    /// keeps draining after a failure, failed cells are never cached, and
    /// corrupt cache entries degrade to misses with a warning on stderr.
    /// With [`SweepPolicy::timeout_ms`] set, every attempt runs under a
    /// watchdog and timed-out tasks retry up to [`SweepPolicy::retries`]
    /// times.
    pub fn try_sweep<T, R>(
        &self,
        tasks: &[T],
        key: impl Fn(&T) -> CacheKey + Sync,
        codec: Codec<R>,
        run: impl Fn(&T) -> R + Sync,
    ) -> Vec<Result<R, TrialError>>
    where
        T: Sync,
        R: Send,
    {
        let n = tasks.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n.max(1));
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, TrialError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        // A private scope (rather than delegating to `run_grid`, which owns
        // its scope internally) so workers can hand `scope` itself to
        // `run_cell`, which spawns watchdog attempt threads on it. Workers
        // capture plain copies of these references (`move`), which is what
        // lets the nested spawn borrow-check against the same `'scope`.
        let (this, cursor_ref, slots_ref, key_ref, run_ref) =
            (self, &cursor, &slots, &key, &run);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move || loop {
                    let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = this.run_cell(scope, i, &tasks[i], key_ref, codec, run_ref);
                    *slots_ref[i].lock().expect("slot poisoned") = Some(cell);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot poisoned").expect("all tasks ran"))
            .collect()
    }

    /// One grid cell: cache consult, fault injection, watchdog, store.
    fn run_cell<'scope, T, R>(
        &'scope self,
        scope: &'scope std::thread::Scope<'scope, '_>,
        i: usize,
        task: &'scope T,
        key: &impl Fn(&T) -> CacheKey,
        codec: Codec<R>,
        run: &'scope (impl Fn(&T) -> R + Sync),
    ) -> Result<R, TrialError>
    where
        T: Sync,
        R: Send + 'scope,
    {
        let k = key(task);
        match self.cache.lookup(&k) {
            CacheLookup::Hit(v) => {
                if let Some(cached) = (codec.decode)(&v) {
                    self.metrics.bump(0, Counter::CacheHits);
                    return Ok(cached);
                }
                // Well-formed entry, stale codec: recompute as a plain miss.
            }
            CacheLookup::Corrupt(reason) => {
                self.metrics.bump(0, Counter::CacheCorrupt);
                eprintln!(
                    "mg-runner: warning: corrupt cache entry for task {i} ({reason}); recomputing"
                );
            }
            CacheLookup::Miss => {}
        }
        let faults = &self.faults;
        let attempt = move || {
            if faults.panics(i) {
                panic!("mg-fault: injected panic in task {i}");
            }
            if faults.hangs(i) {
                std::thread::sleep(Duration::from_millis(faults.hang_ms));
            }
            run(task)
        };
        let outcome = match self.policy.timeout_ms {
            None => catch_unwind(AssertUnwindSafe(attempt))
                .map_err(|p| TrialError::Panicked { task: i, message: panic_message(&*p) }),
            Some(timeout_ms) => {
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    let (tx, rx) = mpsc::channel();
                    let this_attempt = attempt;
                    scope.spawn(move || {
                        let _ = tx.send(catch_unwind(AssertUnwindSafe(this_attempt)));
                    });
                    match rx.recv_timeout(Duration::from_millis(timeout_ms)) {
                        Ok(Ok(r)) => break Ok(r),
                        Ok(Err(p)) => {
                            break Err(TrialError::Panicked {
                                task: i,
                                message: panic_message(&*p),
                            })
                        }
                        Err(_) if attempts <= self.policy.retries => continue,
                        Err(_) => {
                            break Err(TrialError::TimedOut { task: i, attempts, timeout_ms })
                        }
                    }
                }
            }
        };
        match outcome {
            Ok(result) => {
                self.cache.store(&k, &(codec.encode)(&result));
                if faults.corrupts_cache(i) {
                    self.cache.truncate_entry(&k);
                }
                self.metrics.bump(0, Counter::CacheMisses);
                Ok(result)
            }
            Err(e) => {
                self.metrics.bump(0, Counter::TrialErrors);
                Err(e)
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mg-runner-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn u64_codec() -> Codec<u64> {
        Codec { encode: |r| Json::from(*r), decode: |j| j.as_u64() }
    }

    #[test]
    fn sweep_computes_then_replays() {
        let dir = tmp_dir("replay");
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let tasks: Vec<u64> = (0..20).collect();
        let calls = AtomicU64::new(0);
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        let run = |t: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            t * 3
        };
        let first = runner.sweep(&tasks, key, u64_codec(), run);
        assert_eq!(first, (0..20).map(|t| t * 3).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 20);
        assert_eq!((runner.hits(), runner.misses()), (0, 20));

        let second = runner.sweep(&tasks, key, u64_codec(), run);
        assert_eq!(second, first);
        assert_eq!(calls.load(Ordering::Relaxed), 20, "second pass must be all hits");
        assert_eq!((runner.hits(), runner.misses()), (20, 20));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cache_off_always_recomputes() {
        let dir = tmp_dir("off");
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::Off));
        let tasks: Vec<u64> = (0..5).collect();
        let calls = AtomicU64::new(0);
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        let run = |t: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            *t
        };
        runner.sweep(&tasks, key, u64_codec(), run);
        runner.sweep(&tasks, key, u64_codec(), run);
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert!(!dir.exists(), "Off mode must not create the cache dir");
    }

    #[test]
    fn refresh_overwrites_but_never_reads() {
        let dir = tmp_dir("refresh");
        let rw = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        rw.sweep(&[7u64], key, u64_codec(), |_| 1);
        assert_eq!(rw.sweep(&[7u64], key, u64_codec(), |_| 2), vec![1]);

        let refresh = Runner::new(Cache::new(dir.clone(), CacheMode::Refresh));
        assert_eq!(refresh.sweep(&[7u64], key, u64_codec(), |_| 3), vec![3]);
        // The refreshed value is what ReadWrite now sees.
        assert_eq!(rw.sweep(&[7u64], key, u64_codec(), |_| 4), vec![3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn panicking_and_hanging_tasks_poison_only_their_own_cells() {
        let dir = tmp_dir("poison");
        let faults = RunnerFaults {
            panic_tasks: vec![3],
            hang_tasks: vec![5],
            hang_ms: 400,
            timeout_ms: Some(25),
            retries: 1,
            ..RunnerFaults::default()
        };
        let tasks: Vec<u64> = (0..8).collect();
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        let run = |t: &u64| t * 10;

        let faulty = Runner::new(Cache::new(dir.clone(), CacheMode::Off)).with_faults(faults);
        let out = faulty.try_sweep(&tasks, key, u64_codec(), run);
        let clean = Runner::new(Cache::new(dir.clone(), CacheMode::Off))
            .try_sweep(&tasks, key, u64_codec(), run);

        for (i, cell) in out.iter().enumerate() {
            match i {
                3 => match cell {
                    Err(TrialError::Panicked { task, message }) => {
                        assert_eq!(*task, 3);
                        assert!(message.contains("injected panic"), "{message}");
                    }
                    other => panic!("cell 3 must be Panicked, got {other:?}"),
                },
                5 => match cell {
                    Err(TrialError::TimedOut { task, attempts, timeout_ms }) => {
                        assert_eq!((*task, *attempts, *timeout_ms), (5, 2, 25));
                    }
                    other => panic!("cell 5 must be TimedOut, got {other:?}"),
                },
                _ => assert_eq!(cell, &clean[i], "healthy cell {i} must match a fault-free run"),
            }
        }
        assert_eq!(faulty.errors(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_cache_entries_degrade_to_recomputed_misses() {
        let dir = tmp_dir("degrade");
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        runner.sweep(&[1u64, 2], key, u64_codec(), |t| t + 100);
        runner.cache().truncate_entry(&key(&1));

        let out = runner.sweep(&[1u64, 2], key, u64_codec(), |t| t + 100);
        assert_eq!(out, vec![101, 102]);
        assert_eq!(runner.corrupt(), 1, "the torn entry must be counted");
        assert_eq!(runner.hits(), 1, "the intact entry must still replay");
        // The recompute healed the entry on disk.
        runner.sweep(&[1u64], key, u64_codec(), |_| unreachable!("healed entry must hit"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn injected_cache_corruption_is_self_inflicted_and_survivable() {
        let dir = tmp_dir("self-corrupt");
        let faults =
            RunnerFaults { corrupt_cache_tasks: vec![0], ..RunnerFaults::default() };
        let runner =
            Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite)).with_faults(faults);
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        assert_eq!(runner.sweep(&[9u64], key, u64_codec(), |t| t + 1), vec![10]);
        // The stored entry was truncated right after the store: next pass
        // classifies it corrupt, recomputes, and (re-corrupts) again.
        assert_eq!(runner.sweep(&[9u64], key, u64_codec(), |t| t + 1), vec![10]);
        assert_eq!(runner.corrupt(), 1);
        assert_eq!(runner.hits(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_panics_with_the_cell_error() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let dir = tmp_dir("sweep-panic");
            let faults = RunnerFaults { panic_tasks: vec![1], ..RunnerFaults::default() };
            let runner = Runner::new(Cache::new(dir, CacheMode::Off)).with_faults(faults);
            let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
            runner.sweep(&[0u64, 1], key, u64_codec(), |t| *t)
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("task 1"), "sweep must name the failed cell: {msg}");
    }

    #[test]
    fn undecodable_entries_are_recomputed() {
        let dir = tmp_dir("undecodable");
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        let strict: Codec<u64> = Codec { encode: |r| Json::from(*r), decode: |_| None };
        runner.sweep(&[1u64], key, strict, |_| 5);
        // decode always fails → the stored value is ignored, task recomputed.
        let out = runner.sweep(&[1u64], key, strict, |_| 6);
        assert_eq!(out, vec![6]);
        assert_eq!(runner.hits(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
