//! # mg-runner — the sweep-execution engine
//!
//! Parameter sweeps (PM × sample-size × seed grids, one simulation per
//! point) are the cost center of every experiment in this workspace. This
//! crate makes them cheap and resumable with three pieces, all
//! zero-dependency:
//!
//! * [`run_grid`] — a **flat task grid**: the caller declares every task up
//!   front and one work-stealing pool drains them, so cores never idle at
//!   parameter-point boundaries and slow tasks overlap with fast ones.
//!   Results come back in task order, deterministically.
//! * [`CacheKey`] — a **canonical content key** for a task: named fields
//!   (rendered through `Debug`, so every config field participates) behind
//!   an FNV-1a 64-bit hash. Any field change changes the key.
//! * [`Cache`] + [`Runner`] — a **content-keyed result cache**: completed
//!   task results serialize to `<dir>/<fnv64>.json` via [`mg_trace::json`],
//!   so re-running a sweep replays cached points and an interrupted sweep
//!   resumes where it stopped. Hits and misses are counted through a
//!   [`Metrics`] handle owned by the runner — never mixed into the trial
//!   results themselves, which keeps cold and warm sweep outputs
//!   byte-identical.
//!
//! ```
//! use mg_runner::{Cache, CacheKey, CacheMode, Codec, Runner};
//! use mg_trace::json::Json;
//!
//! let dir = std::env::temp_dir().join("mg-runner-doc");
//! let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
//! let tasks: Vec<u64> = (0..8).collect();
//! let codec = Codec {
//!     encode: |r: &u64| Json::from(*r),
//!     decode: |j: &Json| j.as_u64(),
//! };
//! let key = |t: &u64| CacheKey::new("doc", 1).field("task", t);
//! let out = runner.sweep(&tasks, key, codec, |&t| t * t);
//! assert_eq!(out[3], 9);
//! let again = runner.sweep(&tasks, key, codec, |_| unreachable!("all cached"));
//! assert_eq!(out, again);
//! # let _ = std::fs::remove_dir_all(dir);
//! ```

#![warn(missing_docs)]

mod cache;
mod grid;
mod key;

pub use cache::{Cache, CacheMode};
pub use grid::run_grid;
pub use key::{fnv64, CacheKey};

use mg_trace::json::Json;
use mg_trace::{Counter, Metrics};

/// How a result type crosses the cache boundary: a pair of plain function
/// pointers (so the codec stays `Copy` and trivially `Sync`).
///
/// `decode` returning `None` marks the cached value as unusable — the runner
/// recomputes and overwrites it, so a decoder can be strict.
pub struct Codec<R> {
    /// Serializes a result for storage.
    pub encode: fn(&R) -> Json,
    /// Rebuilds a result from storage; `None` means "recompute".
    pub decode: fn(&Json) -> Option<R>,
}

impl<R> Clone for Codec<R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R> Copy for Codec<R> {}

/// Executes task grids against a result cache, counting hits and misses.
pub struct Runner {
    cache: Cache,
    metrics: Metrics,
}

impl Runner {
    /// A runner over `cache`. The hit/miss metrics are the runner's own —
    /// they never leak into task results.
    pub fn new(cache: Cache) -> Runner {
        Runner { cache, metrics: Metrics::new(1) }
    }

    /// The cache this runner consults.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The runner's own metrics handle (cache hit/miss counters).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Tasks replayed from the cache so far.
    pub fn hits(&self) -> u64 {
        self.metrics.node_counter(0, Counter::CacheHits)
    }

    /// Tasks actually computed so far.
    pub fn misses(&self) -> u64 {
        self.metrics.node_counter(0, Counter::CacheMisses)
    }

    /// One-line human summary of the cache traffic, for stderr.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} misses ({})",
            self.hits(),
            self.misses(),
            self.cache.describe()
        )
    }

    /// Drains `tasks` through the work-stealing pool, consulting the cache
    /// around each one.
    ///
    /// For every task: build its [`CacheKey`], try [`Cache::load`] +
    /// `codec.decode` (a hit bypasses `run` entirely), otherwise call
    /// `run` and store the encoded result. Results return in task order —
    /// cached and computed tasks are indistinguishable in the output.
    pub fn sweep<T, R>(
        &self,
        tasks: &[T],
        key: impl Fn(&T) -> CacheKey + Sync,
        codec: Codec<R>,
        run: impl Fn(&T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        run_grid(tasks, |_, task| {
            let k = key(task);
            if let Some(cached) = self.cache.load(&k).and_then(|v| (codec.decode)(&v)) {
                self.metrics.bump(0, Counter::CacheHits);
                return cached;
            }
            let result = run(task);
            self.cache.store(&k, &(codec.encode)(&result));
            self.metrics.bump(0, Counter::CacheMisses);
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mg-runner-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn u64_codec() -> Codec<u64> {
        Codec { encode: |r| Json::from(*r), decode: |j| j.as_u64() }
    }

    #[test]
    fn sweep_computes_then_replays() {
        let dir = tmp_dir("replay");
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let tasks: Vec<u64> = (0..20).collect();
        let calls = AtomicU64::new(0);
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        let run = |t: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            t * 3
        };
        let first = runner.sweep(&tasks, key, u64_codec(), run);
        assert_eq!(first, (0..20).map(|t| t * 3).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 20);
        assert_eq!((runner.hits(), runner.misses()), (0, 20));

        let second = runner.sweep(&tasks, key, u64_codec(), run);
        assert_eq!(second, first);
        assert_eq!(calls.load(Ordering::Relaxed), 20, "second pass must be all hits");
        assert_eq!((runner.hits(), runner.misses()), (20, 20));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cache_off_always_recomputes() {
        let dir = tmp_dir("off");
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::Off));
        let tasks: Vec<u64> = (0..5).collect();
        let calls = AtomicU64::new(0);
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        let run = |t: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            *t
        };
        runner.sweep(&tasks, key, u64_codec(), run);
        runner.sweep(&tasks, key, u64_codec(), run);
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert!(!dir.exists(), "Off mode must not create the cache dir");
    }

    #[test]
    fn refresh_overwrites_but_never_reads() {
        let dir = tmp_dir("refresh");
        let rw = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        rw.sweep(&[7u64], key, u64_codec(), |_| 1);
        assert_eq!(rw.sweep(&[7u64], key, u64_codec(), |_| 2), vec![1]);

        let refresh = Runner::new(Cache::new(dir.clone(), CacheMode::Refresh));
        assert_eq!(refresh.sweep(&[7u64], key, u64_codec(), |_| 3), vec![3]);
        // The refreshed value is what ReadWrite now sees.
        assert_eq!(rw.sweep(&[7u64], key, u64_codec(), |_| 4), vec![3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn undecodable_entries_are_recomputed() {
        let dir = tmp_dir("undecodable");
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let key = |t: &u64| CacheKey::new("t", 1).field("task", t);
        let strict: Codec<u64> = Codec { encode: |r| Json::from(*r), decode: |_| None };
        runner.sweep(&[1u64], key, strict, |_| 5);
        // decode always fails → the stored value is ignored, task recomputed.
        let out = runner.sweep(&[1u64], key, strict, |_| 6);
        assert_eq!(out, vec![6]);
        assert_eq!(runner.hits(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
