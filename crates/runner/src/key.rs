//! Canonical content keys for cached task results.

/// FNV-1a 64-bit hash — tiny, dependency-free, and stable across platforms
/// and runs (unlike `std`'s randomly-seeded hasher).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A canonical, content-derived key for one task.
///
/// Built from named fields rendered through `Debug`, so *every* field of a
/// config struct participates — deriving a key from a whole
/// `ScenarioConfig` means any field change (topology, rates, seed, timing…)
/// changes the key and invalidates the cached entry. The schema version
/// passed to [`CacheKey::new`] is the manual override: bump it when the
/// *meaning* of a result changes without its config changing (estimator
/// fixes, new outcome fields).
///
/// The full canonical text is stored inside each cache file and verified on
/// read, so an FNV collision degrades to a cache miss, never a wrong result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    text: String,
}

impl CacheKey {
    /// Starts a key for `experiment` at result-schema version `schema`.
    pub fn new(experiment: &str, schema: u64) -> CacheKey {
        CacheKey { text: format!("experiment={experiment};schema={schema}") }
    }

    /// Appends a named field, rendered via `Debug`.
    pub fn field(mut self, name: &str, value: impl std::fmt::Debug) -> CacheKey {
        use std::fmt::Write as _;
        let _ = write!(self.text, ";{name}={value:?}");
        self
    }

    /// The full canonical key text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The key's FNV-1a 64-bit hash (the cache file name stem).
    pub fn hash(&self) -> u64 {
        fnv64(self.text.as_bytes())
    }

    /// The cache file name for this key: `<hash as 16 hex digits>.json`.
    pub fn file_name(&self) -> String {
        format!("{:016x}.json", self.hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn every_field_changes_the_key() {
        let base = || CacheKey::new("fig5", 1).field("pm", 50u8).field("seed", 3000u64);
        let k = base();
        assert_ne!(k.hash(), CacheKey::new("fig6", 1).field("pm", 50u8).field("seed", 3000u64).hash());
        assert_ne!(k.hash(), CacheKey::new("fig5", 2).field("pm", 50u8).field("seed", 3000u64).hash());
        assert_ne!(k.hash(), CacheKey::new("fig5", 1).field("pm", 60u8).field("seed", 3000u64).hash());
        assert_ne!(k.hash(), CacheKey::new("fig5", 1).field("pm", 50u8).field("seed", 3001u64).hash());
        assert_eq!(k, base());
    }

    #[test]
    fn debug_rendering_covers_struct_fields() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Cfg {
            rate: f64,
            nodes: usize,
        }
        let a = CacheKey::new("x", 1).field("cfg", Cfg { rate: 1.0, nodes: 56 });
        let b = CacheKey::new("x", 1).field("cfg", Cfg { rate: 1.0, nodes: 57 });
        assert_ne!(a.hash(), b.hash());
        assert!(a.text().contains("nodes: 56"));
    }

    #[test]
    fn file_names_are_hex_and_stable() {
        let k = CacheKey::new("t", 1).field("seed", 42u64);
        assert_eq!(k.file_name(), format!("{:016x}.json", k.hash()));
        assert!(k.file_name().ends_with(".json"));
        assert_eq!(k.file_name().len(), 16 + 5);
    }
}
