//! The flat task grid: one work-stealing pool over an up-front task list.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(index, &task)` for every task, stealing work across the available
/// cores, and returns the results in task order.
///
/// Generalizes the old per-point `parallel_seeds` loop: instead of one
/// thread-pool round per parameter point, a figure flattens its whole
/// (point × seed) grid into one task list, so threads that finish a fast
/// point immediately steal trials from a slow one. Scheduling is a single
/// shared atomic counter on `std::thread::scope` — no external crates.
///
/// `f` runs on worker threads, so the task→result mapping must not depend
/// on execution order for the output to be deterministic (pure functions of
/// `(index, task)` are). Panics in any task propagate once all threads have
/// joined.
pub fn run_grid<T, R, F>(tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = tasks.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let counter = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i, &tasks[i]);
                *slots[i].lock().expect("slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot poisoned").expect("all tasks ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let out = run_grid(&tasks, |i, &t| (i as u64, t + 1));
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(v, tasks[i] + 1);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u64> = run_grid(&[] as &[u64], |_, &t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_task_durations_still_complete() {
        // Tasks with wildly different costs: stealing must still cover all.
        let tasks: Vec<u64> = (0..64).collect();
        let out = run_grid(&tasks, |_, &t| {
            if t % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            t * t
        });
        assert_eq!(out, tasks.iter().map(|t| t * t).collect::<Vec<_>>());
    }
}
