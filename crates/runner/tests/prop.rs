//! Property-based tests for the mg-runner sweep engine (mg-testkit
//! harness): grid completion under work stealing, deterministic ordering,
//! cache round-trips, and key sensitivity to every config field.

use mg_runner::{fnv64, run_grid, Cache, CacheKey, CacheMode, Codec, Runner};
use mg_testkit::prop::{check, Gen, TkResult};
use mg_testkit::{tk_assert, tk_assert_eq};
use mg_trace::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str, nonce: u64) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mg-runner-prop-{tag}-{}-{nonce}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Every task of a random-size grid completes exactly once, and results
/// land at their task's index regardless of how threads steal the work.
#[test]
fn grid_completes_every_task_in_order() {
    check("grid_completes_every_task_in_order", |g: &mut Gen| -> TkResult {
        let n = g.usize_in(0..200);
        let tasks: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        let calls = AtomicU64::new(0);
        let out = run_grid(&tasks, |i, &t| {
            calls.fetch_add(1, Ordering::Relaxed);
            t ^ (i as u64)
        });
        tk_assert_eq!(calls.load(Ordering::Relaxed), n as u64);
        tk_assert_eq!(out.len(), n);
        for (i, &v) in out.iter().enumerate() {
            tk_assert_eq!(v, tasks[i] ^ (i as u64));
        }
        Ok(())
    });
}

/// The task→result mapping is deterministic: two drains of the same grid
/// produce identical result vectors even though scheduling differs.
#[test]
fn grid_ordering_is_deterministic_across_runs() {
    check("grid_ordering_is_deterministic_across_runs", |g: &mut Gen| -> TkResult {
        let tasks = g.vec(1..64, |g| g.any_u64());
        let f = |i: usize, t: &u64| t.wrapping_mul(31).wrapping_add(i as u64);
        let a = run_grid(&tasks, f);
        let b = run_grid(&tasks, f);
        tk_assert_eq!(a, b);
        Ok(())
    });
}

fn arb_json(g: &mut Gen, depth: usize) -> Json {
    match g.u8_in(0..if depth == 0 { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(g.bool()),
        2 => Json::Num((g.u64_in(0..1 << 50) as f64) / 8.0),
        3 => Json::Str(g.vec(0..8, |g| g.u8_in(b' '..b'~') as char).into_iter().collect()),
        4 => Json::Arr(g.vec(0..4, |g| arb_json(g, depth - 1))),
        _ => Json::Obj(
            (0..g.usize_in(0..4))
                .map(|i| (format!("k{i}"), arb_json(g, depth - 1)))
                .collect(),
        ),
    }
}

/// A cache hit replays the stored value byte-for-byte: rendering the loaded
/// value equals rendering the stored one exactly.
#[test]
fn cache_roundtrip_is_byte_identical() {
    check("cache_roundtrip_is_byte_identical", |g: &mut Gen| -> TkResult {
        let value = arb_json(g, 3);
        let key = CacheKey::new("prop", g.u64_in(0..8)).field("seed", g.any_u64());
        let dir = tmp_dir("roundtrip", g.any_u64());
        let cache = Cache::new(dir.clone(), CacheMode::ReadWrite);
        cache.store(&key, &value);
        let loaded = cache.load(&key);
        let _ = std::fs::remove_dir_all(dir);
        tk_assert!(loaded.is_some(), "stored entry must load");
        let loaded = loaded.unwrap();
        tk_assert_eq!(loaded.render(), value.render());
        tk_assert_eq!(loaded, value);
        Ok(())
    });
}

/// A swept grid re-run against a warm cache returns exactly the cold run's
/// results without invoking the task function again.
#[test]
fn sweep_hit_equals_recompute() {
    check("sweep_hit_equals_recompute", |g: &mut Gen| -> TkResult {
        let tasks = g.vec(1..24, |g| g.u64_in(0..1 << 40));
        let schema = g.u64_in(0..4);
        let dir = tmp_dir("sweep", g.any_u64());
        let runner = Runner::new(Cache::new(dir.clone(), CacheMode::ReadWrite));
        let codec: Codec<u64> = Codec {
            encode: |r| Json::from(*r),
            decode: |j| j.as_u64(),
        };
        let key = move |t: &u64| CacheKey::new("prop-sweep", schema).field("task", t);
        let calls = AtomicU64::new(0);
        let run = |t: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            // Stay under 2^53: JSON numbers pass through f64, and the codec
            // refuses (→ recompute) anything that would round.
            t.wrapping_mul(0x5851_f42d) & ((1 << 53) - 1)
        };
        let cold = runner.sweep(&tasks, key, codec, run);
        let cold_calls = calls.load(Ordering::Relaxed);
        let warm = runner.sweep(&tasks, key, codec, run);
        let warm_calls = calls.load(Ordering::Relaxed) - cold_calls;
        let _ = std::fs::remove_dir_all(dir);
        tk_assert_eq!(warm, cold);
        // Duplicate task values may collapse to one cache entry on the cold
        // pass; the warm pass must do no work at all.
        tk_assert_eq!(warm_calls, 0);
        tk_assert!(runner.hits() >= tasks.len() as u64);
        Ok(())
    });
}

/// Changing any single key field — experiment name, schema version, or any
/// config field value — produces a different key hash and file name.
#[test]
fn key_depends_on_every_field() {
    check("key_depends_on_every_field", |g: &mut Gen| -> TkResult {
        let experiment = format!("exp{}", g.u8_in(0..10));
        let schema = g.u64_in(0..100);
        let fields: Vec<(String, u64)> = (0..g.usize_in(1..6))
            .map(|i| (format!("f{i}"), g.any_u64()))
            .collect();
        let build = |exp: &str, schema: u64, fields: &[(String, u64)]| {
            let mut k = CacheKey::new(exp, schema);
            for (name, v) in fields {
                k = k.field(name, v);
            }
            k
        };
        let base = build(&experiment, schema, &fields);
        tk_assert_eq!(base.hash(), build(&experiment, schema, &fields).hash());

        let other_exp = build(&format!("{experiment}x"), schema, &fields);
        tk_assert!(other_exp.text() != base.text());
        tk_assert!(other_exp.hash() != base.hash());

        let other_schema = build(&experiment, schema + 1, &fields);
        tk_assert!(other_schema.hash() != base.hash());

        let i = g.usize_in(0..fields.len());
        let mut mutated = fields.clone();
        mutated[i].1 = mutated[i].1.wrapping_add(1 + g.u64_in(0..1 << 32));
        let other_field = build(&experiment, schema, &mutated);
        tk_assert!(other_field.text() != base.text());
        tk_assert!(other_field.hash() != base.hash());
        Ok(())
    });
}

/// The hash is a pure function of the key text (stability guard for the
/// on-disk layout: renaming nothing must invalidate nothing).
#[test]
fn hash_is_fnv1a_of_the_text() {
    check("hash_is_fnv1a_of_the_text", |g: &mut Gen| -> TkResult {
        let k = CacheKey::new("stab", g.u64_in(0..10)).field("x", g.any_u64());
        tk_assert_eq!(k.hash(), fnv64(k.text().as_bytes()));
        Ok(())
    });
}
