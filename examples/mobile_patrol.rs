//! Monitoring a mobile attacker with vantage handoff.
//!
//! The paper's Section 5 mobile experiment: 112 nodes under random-waypoint
//! motion (0–20 m/s). No single neighbor stays in range of the attacker, so
//! a [`MonitorPool`] keeps a monitor at every node and always harvests
//! back-off samples from the vantage currently closest to the attacker —
//! "if this neighbor moves out of range, another neighbor is chosen".
//!
//! ```text
//! cargo run --release --example mobile_patrol
//! ```

use manet_guard::prelude::*;
use manet_guard::net::DstPolicy;

fn main() {
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 60,
        rate_pps: 2.0,
        ..ScenarioConfig::mobile_paper(5, SimDuration::ZERO)
    });
    let (attacker, nearest) = scenario.tagged_pair();
    println!("attacker: node {attacker} (initially nearest neighbor: {nearest})");

    // A monitor at every other node; the pool elects the active vantage.
    let vantages: Vec<usize> = (0..scenario.positions().len())
        .filter(|&v| v != attacker)
        .collect();
    let mut template = MonitorConfig::random_paper(attacker, nearest, 240.0);
    template.sample_size = 50;
    // Mobile-pool settings (see EXPERIMENTS.md): distance-scaled calibration
    // for whichever vantage is elected, and no EIFS compensation (the
    // vantage's collision environment diverges from the attacker's).
    template.counts = NodeCounts::SimCalibrated;
    template.eifs_weight = 0.0;

    let mut builder = ScenarioBuilder::new(scenario);
    let cheat = builder.attacker(attacker);
    let watch = builder.monitor_pool(template, &vantages);
    // The attacker pushes packets at whichever neighbor is currently around.
    builder.source(SourceCfg {
        node: attacker,
        model: TrafficModel::Saturated,
        dst: DstPolicy::StickyRandomNeighbor,
        payload_len: 512,
    });

    let mut world = builder.build();
    world.set_policy(cheat.id(), BackoffPolicy::Scaled { pm: 60 });
    world.run_until(SimTime::from_secs(60));

    let pool = world.monitors().pool(watch);
    let d = pool.diagnosis();
    println!("\nafter 60 s of patrol:");
    println!("  hypothesis tests         : {}", d.tests_run);
    println!("  rejections               : {}", d.rejections);
    println!("  deterministic violations : {}", d.violations);
    let mut contributions: Vec<(usize, usize)> = pool
        .contributions()
        .iter()
        .map(|(&v, &n)| (v, n))
        .collect();
    contributions.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!(
        "  vantage handoffs         : {} distinct vantages contributed samples",
        contributions.len()
    );
    for (v, n) in contributions.iter().take(5) {
        println!("    node {v:>3} contributed {n} back-off samples");
    }
    println!(
        "\nverdict: mobile attacker {}",
        if d.is_flagged() { "CAUGHT" } else { "missed" }
    );
    assert!(d.is_flagged(), "a PM=60 attacker must be caught in 60 s");
}
