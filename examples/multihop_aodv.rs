//! Multi-hop routing over the DCF, with detection running on a relay.
//!
//! The paper's Table 1 lists AODV as the routing protocol. This example
//! routes application packets across a 5-node chain with AODV-lite
//! (RREQ flood → RREP → hop-by-hop data) while a monitor watches one of the
//! relays — protocol-compliant forwarding raises no flags even under
//! routing broadcast traffic.
//!
//! ```text
//! cargo run --release --example multihop_aodv
//! ```

use manet_guard::prelude::*;

fn main() {
    // A chain: 0 - 1 - 2 - 3 - 4, 200 m hops (250 m decode range).
    let positions: Vec<Vec2> = (0..5).map(|i| Vec2::new(i as f64 * 200.0, 0.0)).collect();
    // Node 2 (the middle relay) is watched by its neighbor node 1.
    let mut mc = MonitorConfig::grid_paper(2, 1, 200.0);
    mc.sample_size = 10;
    let mut world = World::new(
        positions,
        PropagationModel::free_space(),
        250.0,
        550.0,
        MacTiming::paper_default(),
        13,
        Monitor::new(mc),
    );
    world.enable_routing();

    // 40 application packets from node 0 to node 4 (4 hops each).
    for app_id in 0..40 {
        world.send_routed(0, 4, app_id);
    }
    world.run_until(SimTime::from_secs(20));

    println!("routed deliveries 0 -> 4 : {}/40", world.app_delivered);
    println!("MAC-level receptions     : {}", world.mac_delivered);
    for n in 0..5 {
        let s = world.mac(n).stats();
        println!(
            "  node {n}: rts {} / data {} / delivered {} / rx {}",
            s.rts_sent, s.data_sent, s.delivered, s.rx_delivered
        );
    }

    let d = world.observer().diagnosis();
    println!(
        "\nmonitor at node 1 watching relay node 2: tests {}, rejections {}, violations {}",
        d.tests_run, d.rejections, d.violations
    );
    assert!(world.app_delivered >= 35, "most packets must arrive");
    assert_eq!(d.violations, 0, "a compliant relay must not be flagged");
    assert_eq!(d.rejections, 0, "a compliant relay must not be flagged");
    println!("relay node 2 is clean — forwarding under AODV raises no alarms");
}
