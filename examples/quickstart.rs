//! Quickstart: catch a back-off cheater in the paper's grid network.
//!
//! A tagged node is configured with the paper's "percentage of misbehavior"
//! knob (PM = 75: it counts down only a quarter of every dictated back-off),
//! saturates a flow to its neighbor, and the neighbor runs the paper's
//! monitor. Within a few simulated seconds the cheater is flagged both
//! statistically (Wilcoxon rank-sum on estimated vs dictated back-offs) and
//! deterministically (windows physically too short).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use manet_guard::prelude::*;

fn main() {
    // The paper's Table 1 grid: 7×8 nodes, 240 m spacing, Poisson background.
    // (Huge worlds can set `shards: Shards::Regions(n)` here to run on the
    // region-sharded engine — byte-identical results, see examples/big_world.rs.)
    let scenario = Scenario::new(ScenarioConfig {
        sim_secs: 30,
        rate_pps: 2.0,
        ..ScenarioConfig::grid_paper(42)
    });
    let (attacker, vantage) = scenario.tagged_pair();
    println!("attacker: node {attacker}, monitoring neighbor: node {vantage}");

    // The monitor knows the attacker's MAC address, hence its entire
    // dictated back-off sequence.
    let mut builder = ScenarioBuilder::new(scenario);
    let cheat = builder.attacker(attacker);
    let watch = builder.monitor(MonitorConfig::grid_paper(attacker, vantage, 240.0));
    builder.source(SourceCfg::saturated(attacker, vantage));

    let mut world = builder.build();
    world.set_policy(cheat.id(), BackoffPolicy::Scaled { pm: 75 });
    world.run_until(SimTime::from_secs(30));

    let diagnosis = world.monitors().diagnosis(watch);
    println!("\nafter {} of channel time:", SimDuration::from_secs(30));
    println!("  back-off samples collected : {}", diagnosis.samples_collected);
    println!("  hypothesis tests run       : {}", diagnosis.tests_run);
    println!("  tests rejecting H0         : {}", diagnosis.rejections);
    println!("  deterministic violations   : {}", diagnosis.violations);
    println!("  measured channel load      : {:.2}", diagnosis.measured_rho);
    println!(
        "\nverdict: node {attacker} is {}",
        if diagnosis.is_flagged() {
            "MISBEHAVING (flagged)"
        } else {
            "apparently well-behaved"
        }
    );
    assert!(diagnosis.is_flagged(), "a PM=75 attacker must be caught");
}
