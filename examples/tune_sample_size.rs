//! The detection-speed / accuracy trade-off (paper Section 5).
//!
//! "With an increase in the sample size, the accuracy improves
//! significantly, but it now takes longer to record a bigger history" — this
//! example quantifies that trade-off for a PM = 50 attacker: per sample
//! size, the per-test detection probability and the (virtual) time needed to
//! fill one test's history.
//!
//! ```text
//! cargo run --release --example tune_sample_size
//! ```

use manet_guard::prelude::*;

fn main() {
    let pm = 50u8;
    let secs = 60;
    println!("PM = {pm} attacker, {secs}s runs, grid topology, light background\n");
    println!("{:>11}  {:>6}  {:>9}  {:>14}  {:>13}", "sample size", "tests", "rejected", "P(detect)/test", "secs/test");

    for sample_size in [10usize, 25, 50, 100, 200] {
        let mut tests = 0usize;
        let mut rejections = 0usize;
        let mut sim_time_per_test = 0.0;
        for seed in 0..4u64 {
            let scenario = Scenario::new(ScenarioConfig {
                sim_secs: secs,
                rate_pps: 2.0,
                ..ScenarioConfig::grid_paper(seed)
            });
            let (s, r) = scenario.tagged_pair();
            let mut mc = MonitorConfig::grid_paper(s, r, 240.0);
            mc.sample_size = sample_size;
            mc.blatant_check = false; // statistical path only
            let mut builder = ScenarioBuilder::new(scenario);
            let cheat = builder.attacker(s);
            let watch = builder.monitor(mc);
            builder.source(SourceCfg::saturated(s, r));
            let mut world = builder.build();
            world.set_policy(cheat.id(), BackoffPolicy::Scaled { pm });
            world.run_until(SimTime::from_secs(secs));
            let d = world.monitors().diagnosis(watch);
            tests += d.tests_run;
            rejections += d.rejections;
            if d.tests_run > 0 {
                sim_time_per_test += secs as f64 / d.tests_run as f64;
            }
        }
        let p = if tests > 0 {
            rejections as f64 / tests as f64
        } else {
            0.0
        };
        println!(
            "{:>11}  {:>6}  {:>9}  {:>14.3}  {:>13.2}",
            sample_size,
            tests,
            rejections,
            p,
            sim_time_per_test / 4.0
        );
    }
    println!("\n(bigger histories detect subtler cheating but verdicts arrive more slowly)");
}
