//! The attack the paper defends against: bandwidth starvation.
//!
//! Three mutually-in-range senders contend for the channel, each saturated.
//! In the honest round everyone gets a fair share; in the attack round one
//! node shrinks its back-off timers (PM = 95) and grabs the channel — "a
//! drastically reduced allocation of bandwidth to well-behaved nodes"
//! (paper, abstract). The example then shows the victim-side monitor
//! catching the attacker.
//!
//! ```text
//! cargo run --release --example dos_attack
//! ```

use manet_guard::prelude::*;

/// Runs the three-sender contention scenario; returns per-node deliveries.
fn contention_round(attacker_pm: Option<u8>) -> Vec<u64> {
    let positions = vec![
        Vec2::new(0.0, 0.0),
        Vec2::new(200.0, 0.0),
        Vec2::new(100.0, 170.0),
    ];
    let mut world: World<()> = World::new(
        positions,
        PropagationModel::free_space(),
        250.0,
        550.0,
        MacTiming::paper_default(),
        99,
        (),
    );
    if let Some(pm) = attacker_pm {
        world.set_policy(0, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(0, 1));
    world.add_source(SourceCfg::saturated(1, 2));
    world.add_source(SourceCfg::saturated(2, 0));
    world.run_until(SimTime::from_secs(10));
    (0..3).map(|i| world.mac(i).stats().delivered).collect()
}

fn main() {
    println!("three saturated senders, 10 s of channel time\n");

    let fair = contention_round(None);
    let total_fair: u64 = fair.iter().sum();
    println!("honest round:   deliveries = {fair:?}  (total {total_fair})");

    let attacked = contention_round(Some(95));
    let total_attacked: u64 = attacked.iter().sum();
    println!("attack round:   deliveries = {attacked:?}  (total {total_attacked})");
    println!(
        "  node 0 share: {:.0}% -> {:.0}%  <- the PM=95 attacker",
        100.0 * fair[0] as f64 / total_fair as f64,
        100.0 * attacked[0] as f64 / total_attacked as f64,
    );
    let victims_before = fair[1] + fair[2];
    let victims_after = attacked[1] + attacked[2];
    println!(
        "  victims lose {:.0}% of their throughput\n",
        100.0 * (1.0 - victims_after as f64 / victims_before as f64)
    );
    assert!(attacked[0] > fair[0], "the attack must pay off to matter");

    // Now the defense: node 1 (a victim and neighbor) monitors node 0.
    let positions = vec![
        Vec2::new(0.0, 0.0),
        Vec2::new(200.0, 0.0),
        Vec2::new(100.0, 170.0),
    ];
    let mut mc = MonitorConfig::grid_paper(0, 1, 200.0);
    mc.sample_size = 25;
    let mut world = World::new(
        positions,
        PropagationModel::free_space(),
        250.0,
        550.0,
        MacTiming::paper_default(),
        99,
        Monitor::new(mc),
    );
    world.set_policy(0, BackoffPolicy::Scaled { pm: 95 });
    world.add_source(SourceCfg::saturated(0, 1));
    world.add_source(SourceCfg::saturated(1, 2));
    world.add_source(SourceCfg::saturated(2, 0));
    world.run_until(SimTime::from_secs(10));
    let d = world.observer().diagnosis();
    println!(
        "defense: monitor at node 1 ran {} tests, rejected {} ({} deterministic violations)",
        d.tests_run, d.rejections, d.violations
    );
    println!(
        "verdict: attacker {}",
        if d.is_flagged() { "CAUGHT" } else { "missed" }
    );
    assert!(d.is_flagged());
}
