//! Frame-level timeline: watch the verifiable four-way handshake on air.
//!
//! Runs a saturated pair with the `mg-trace` journal at full verbosity and
//! prints the first exchanges — RTS → CTS → DATA → ACK, with the channel
//! busy/idle edges and back-off freezes in between — then the monitor's view
//! of the same window (dictated vs estimated back-off) and the stack-wide
//! metrics counters.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use manet_guard::prelude::*;

fn main() {
    let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)];
    let mut mc = MonitorConfig::grid_paper(0, 1, 240.0);
    mc.sample_size = 8;
    let mut world = World::new(
        positions,
        PropagationModel::free_space(),
        250.0,
        550.0,
        MacTiming::paper_default(),
        2,
        Monitor::new(mc),
    );
    world.set_tracer(Tracer::new(TraceConfig::verbose()));
    world.set_metrics(Metrics::new(2));
    world.add_source(SourceCfg::saturated(0, 1));
    world.run_until(SimTime::from_millis(120));

    println!("on-air journal (node 0 saturated toward node 1):\n");
    let events = world.tracer().events();
    for ev in events
        .iter()
        .filter(|e| !matches!(e.kind.subsystem(), Subsystem::Sched))
        .take(48)
    {
        let node = ev
            .node
            .map(|n| format!("node {n}"))
            .unwrap_or_else(|| "      ".into());
        println!(
            "  {:>9.3} ms  {node}  {:<15} {:?}",
            ev.t_ns as f64 / 1_000_000.0,
            ev.kind.tag(),
            ev.kind
        );
    }
    println!(
        "\n({} events journaled, {} overwritten by the ring)",
        world.tracer().len(),
        world.tracer().dropped()
    );

    println!("\nmonitor's back-off ledger (dictated x vs estimated y, slots):");
    let monitor = world.observer();
    for (i, (x, y)) in monitor.samples().iter().enumerate() {
        println!("  window {i:>2}: dictated {x:>5.1}  estimated {y:>7.2}");
    }
    let d = monitor.diagnosis();
    println!(
        "\n{} samples, {} tests, {} rejections — node 0 is {}",
        d.samples_collected,
        d.tests_run,
        d.rejections,
        if d.is_flagged() { "flagged" } else { "clean" }
    );

    let snap = world.metrics().snapshot();
    println!("\nstack metrics: {}", snap.to_json().render());
    assert!(!d.is_flagged());
    assert!(snap.total(Counter::TxFrames) > 0);
}
