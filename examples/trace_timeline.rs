//! Frame-level timeline: watch the verifiable four-way handshake on air.
//!
//! Prints the first few exchanges of a saturated pair — RTS → CTS → DATA →
//! ACK with airtimes — and the monitor's view of the same window (dictated
//! vs estimated back-off).
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use manet_guard::net::{Fanout, TraceObserver};
use manet_guard::prelude::*;

fn main() {
    let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(240.0, 0.0)];
    let mut mc = MonitorConfig::grid_paper(0, 1, 240.0);
    mc.sample_size = 8;
    let obs = Fanout(TraceObserver::new(24), Monitor::new(mc));
    let mut world = World::new(
        positions,
        PropagationModel::free_space(),
        250.0,
        550.0,
        MacTiming::paper_default(),
        2,
        obs,
    );
    world.add_source(SourceCfg::saturated(0, 1));
    world.run_until(SimTime::from_millis(120));

    let Fanout(trace, monitor) = world.observer();
    println!("on-air timeline (node 0 saturated toward node 1):\n");
    print!("{}", trace.render());

    println!("\nmonitor's back-off ledger (dictated x vs estimated y, slots):");
    for (i, (x, y)) in monitor.samples().iter().enumerate() {
        println!("  window {i:>2}: dictated {x:>5.1}  estimated {y:>7.2}");
    }
    let d = monitor.diagnosis();
    println!(
        "\n{} samples, {} tests, {} rejections — node 0 is {}",
        d.samples_collected,
        d.tests_run,
        d.rejections,
        if d.is_flagged() { "flagged" } else { "clean" }
    );
    assert!(!d.is_flagged());
}
