//! Big world: 5000 clustered nodes on the region-sharded engine.
//!
//! Builds a 5000-node clustered topology (50 clumps of 100 nodes) at the
//! paper's node density, runs it on four region-sharded event lanes
//! (`Shards::Regions(4)`), and prints the world's counters plus the shard
//! engine's own diagnostics (epoch barriers crossed, cross-region events
//! exchanged). The shard count is pure execution tuning: rerun with
//! `Shards::Serial` and every number below except wall-clock is identical.
//!
//! ```text
//! cargo run --release --example big_world
//! ```

use manet_guard::prelude::*;

fn main() {
    // 50 × 100 nodes in 300 m clumps, field scaled to the paper's density
    // (3000 m side at 112 nodes → ≈20 km at 5000), CBR background load.
    let nodes = 5000;
    let side = 3000.0 * (nodes as f64 / 112.0).sqrt();
    let cfg = ScenarioConfig {
        topology: TopologyCfg::Clustered { clusters: 50, per_cluster: 100, radius: 300.0 },
        field_w: side,
        field_h: side,
        sim_secs: 1,
        shards: Shards::Regions(4),
        ..ScenarioConfig::large_world(3, nodes)
    };
    println!("world    : {} nodes over {:.0} m x {:.0} m, {} shards", nodes, side, side, 4);

    let scenario = Scenario::new(cfg);
    let mut builder = ScenarioBuilder::new(scenario);
    let cheats = builder.attackers(4);
    let tagged: Vec<usize> = cheats.iter().map(|a| a.id()).collect();
    let watches = builder.monitor_mesh(&tagged);
    // Each cheater saturates a flow to its nearest neighbor, so the mesh
    // has back-offs to sample on top of the background CBR load.
    let pos = builder.scenario().positions().to_vec();
    for &t in &tagged {
        let v = (0..pos.len())
            .filter(|&v| v != t)
            .min_by(|&a, &b| {
                pos[t].distance_sq(pos[a])
                    .partial_cmp(&pos[t].distance_sq(pos[b]))
                    .expect("finite positions")
            })
            .expect("more than one node");
        builder.source(SourceCfg::saturated(t, v));
    }
    builder.metrics();

    let mut world = builder.build();
    for a in &cheats {
        world.set_policy(a.id(), BackoffPolicy::Scaled { pm: 70 });
    }
    let t0 = std::time::Instant::now();
    world.run_until(SimTime::from_secs(1));
    let wall = t0.elapsed();

    let snap = world.metrics().snapshot();
    println!("run      : 1 s virtual in {wall:.2?} ({} events)", world.events_fired());
    println!("traffic  : {} frames tx, {} delivered", snap.total(Counter::TxFrames), snap.total(Counter::Delivered));
    println!("monitors : {} back-off samples across the mesh", snap.total(Counter::MonitorSamples));
    let flagged = watches
        .iter()
        .filter(|&&h| world.monitors().diagnosis(h).is_flagged())
        .count();
    println!("verdicts : {flagged}/{} tagged nodes flagged", watches.len());

    let stats = world.shard_stats().expect("the world runs sharded");
    println!(
        "shards   : {} regions, {} epoch barriers, {} cross-region events, {} lookahead violations",
        stats.regions, stats.barriers, stats.cross_region_events, stats.lookahead_violations
    );
    assert_eq!(stats.regions, 4);
    assert!(stats.barriers > 0, "a populated world must cross epoch barriers");
}
