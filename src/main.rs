//! `manet-guard` — command-line front end.
//!
//! ```text
//! manet-guard demo                      quick demonstration (grid, PM=75)
//! manet-guard detect [OPTIONS]          run one detection scenario
//! manet-guard journal info FILE         inspect a recorded Obs journal
//!                     [--deltas]        …and print its DiagnosisDelta JSONL
//! manet-guard journal transcode IN OUT  re-encode a journal
//! manet-guard journal send FILE --to HOST:PORT [--chunk N]
//!                                       stream a journal to a running mgd
//! manet-guard params                    print the Table 1 parameters
//!
//! detect options:
//!   --pm <0-100>      percentage of misbehavior        [default: 50]
//!   --rate <pps>      background packets/s per source  [default: 2.0]
//!   --secs <s>        simulated seconds                [default: 60]
//!   --seed <n>        run seed                         [default: 1]
//!   --samples <n,..>  back-off samples per test        [default: 50]
//!                     a comma-separated list fans out one monitor per
//!                     size over a single simulated world
//!   --random          random 112-node topology instead of the grid
//!   --mobile          add random-waypoint mobility (implies --random)
//!   --shards <n>      run the world on n region-sharded event lanes
//!                     (or "serial", the default); results are byte-
//!                     identical to the serial engine at any count
//!   --no-blatant      disable the deterministic timing check
//!   --faults <spec>   inject observation faults at every monitor
//!                     (e.g. "light", "heavy,seed=7", "loss=0.1,deaf=250:25");
//!                     with --quorum the spec's lie/mute/flip knobs also
//!                     seed adversarial monitor roles
//!   --quorum <k>      collaborative detection: monitor from up to 2k+1
//!                     in-range vantages, gossip accusations between them,
//!                     and convict only on k distinct accusers. Composes
//!                     with --replay (members come from the journal header)
//!                     but not with --mobile or a multi-size --samples list
//!   --trace <file>    write the event journal as JSONL to <file>
//!   --metrics         print stack-wide counters and histograms
//!   --record <file>   also record the monitors' observation stream as an
//!                     ObsJournal for later --replay
//!   --journal-format <jsonl|bin>
//!                     journal encoding for --record and `journal
//!                     transcode` [default: bin]; with --replay it asserts
//!                     the detected format instead
//!   --replay <file>   skip simulation: replay a recorded journal into
//!                     fresh monitors (the format is auto-detected by
//!                     magic, so old JSONL journals keep working). The
//!                     journal fixes the world, so --replay rejects every
//!                     world knob (--pm, --rate, --secs, --seed, --random,
//!                     --mobile, --record, --trace, --metrics); it composes
//!                     with --samples, --no-blatant and --faults
//! ```
//!
//! Unrecognized arguments are an error (exit code 2), never silently
//! ignored — a typo'd `--sedd 7` must not run the default seed.

use manet_guard::prelude::*;
use manet_guard::serve;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => parse_detect(&["--pm".into(), "75".into()]).map(detect),
        Some("detect") => parse_detect(&args[1..]).map(detect),
        Some("journal") => journal_cmd(&args[1..]),
        Some("params") => {
            if let Some(extra) = args.get(1) {
                Err(format!("unrecognized argument: {extra}"))
            } else {
                params();
                Ok(())
            }
        }
        Some(other) => Err(format!("unrecognized command: {other}")),
        None => Err("missing command".into()),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        eprint!("{}", USAGE);
        std::process::exit(2);
    }
}

const USAGE: &str = "\
manet-guard: back-off timer violation detection (ICDCS 2006 reproduction)

usage:
  manet-guard demo
  manet-guard detect [--pm N] [--rate PPS] [--secs S] [--seed N]
                     [--samples N[,N..]] [--random] [--mobile] [--shards N]
                     [--no-blatant] [--faults SPEC] [--quorum K]
                     [--trace FILE] [--metrics] [--record FILE]
                     [--journal-format jsonl|bin]
  manet-guard detect --replay FILE [--samples N[,N..]] [--no-blatant]
                     [--faults SPEC] [--quorum K] [--journal-format jsonl|bin]
  manet-guard journal info FILE [--deltas]
  manet-guard journal transcode IN OUT [--journal-format jsonl|bin]
  manet-guard journal send FILE --to HOST:PORT [--chunk N]
  manet-guard params
";

struct DetectOpts {
    pm: u8,
    rate: f64,
    secs: u64,
    seed: u64,
    samples: Vec<usize>,
    random: bool,
    mobile: bool,
    shards: Shards,
    no_blatant: bool,
    faults: FaultPlan,
    quorum: Option<usize>,
    trace: Option<String>,
    metrics: bool,
    record: Option<String>,
    replay: Option<String>,
    journal_format: JournalFormat,
    journal_format_explicit: bool,
}

/// Strict parser for `detect` arguments: every flag must be recognized and
/// every value must parse, otherwise the whole invocation is rejected.
/// `--replay` additionally rejects any flag that would contradict the
/// recorded world.
fn parse_detect(args: &[String]) -> Result<DetectOpts, String> {
    let mut o = DetectOpts {
        pm: 50,
        rate: 2.0,
        secs: 60,
        seed: 1,
        samples: vec![50],
        random: false,
        mobile: false,
        shards: Shards::default(),
        no_blatant: false,
        faults: FaultPlan::default(),
        quorum: None,
        trace: None,
        metrics: false,
        record: None,
        replay: None,
        journal_format: JournalFormat::Binary,
        journal_format_explicit: false,
    };
    let mut seen: Vec<&'static str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag: &'static str = match a.as_str() {
            "--pm" => {
                o.pm = value(&mut it, a)?;
                "--pm"
            }
            "--rate" => {
                o.rate = value(&mut it, a)?;
                "--rate"
            }
            "--secs" => {
                o.secs = value(&mut it, a)?;
                "--secs"
            }
            "--seed" => {
                o.seed = value(&mut it, a)?;
                "--seed"
            }
            "--samples" => {
                o.samples = samples_list(&raw_value(&mut it, a)?)?;
                "--samples"
            }
            "--random" => {
                o.random = true;
                "--random"
            }
            "--mobile" => {
                o.mobile = true;
                "--mobile"
            }
            "--shards" => {
                let v = raw_value(&mut it, a)?;
                o.shards = Shards::parse(&v)
                    .map_err(|e| format!("invalid value for --shards: {e}"))?;
                "--shards"
            }
            "--no-blatant" => {
                o.no_blatant = true;
                "--no-blatant"
            }
            "--faults" => {
                let spec = raw_value(&mut it, a)?;
                o.faults = FaultPlan::parse(&spec)
                    .map_err(|e| format!("invalid value for --faults: {e}"))?;
                "--faults"
            }
            "--quorum" => {
                o.quorum = Some(value(&mut it, a)?);
                "--quorum"
            }
            "--trace" => {
                o.trace = Some(raw_value(&mut it, a)?);
                "--trace"
            }
            "--metrics" => {
                o.metrics = true;
                "--metrics"
            }
            "--record" => {
                o.record = Some(raw_value(&mut it, a)?);
                "--record"
            }
            "--replay" => {
                o.replay = Some(raw_value(&mut it, a)?);
                "--replay"
            }
            "--journal-format" => {
                o.journal_format = journal_format_value(&mut it, a)?;
                o.journal_format_explicit = true;
                "--journal-format"
            }
            other => return Err(format!("unrecognized argument: {other}")),
        };
        seen.push(flag);
    }
    if let Some(k) = o.quorum {
        if k == 0 {
            return Err("invalid value for --quorum: 0 (need at least 1 accuser)".into());
        }
        if o.samples.len() > 1 {
            return Err("--quorum monitors one sample size: give --samples a single value".into());
        }
        if o.mobile {
            return Err("--quorum conflicts with --mobile: quorum members monitor from fixed vantages".into());
        }
    }
    if seen.contains(&"--replay") {
        // The journal fixes the world; only detector-side knobs compose.
        const WORLD_FLAGS: [&str; 10] = [
            "--record", "--pm", "--rate", "--secs", "--seed", "--random", "--mobile", "--shards",
            "--trace", "--metrics",
        ];
        for c in WORLD_FLAGS {
            if seen.contains(&c) {
                return Err(format!(
                    "--replay conflicts with {c}: the recorded journal fixes the world"
                ));
            }
        }
    }
    Ok(o)
}

/// Parses the `--samples` value: one size, or a comma-separated list of
/// sizes that all monitor the same run.
fn samples_list(v: &str) -> Result<Vec<usize>, String> {
    let sizes: Vec<usize> = v
        .split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|_| p))
        .collect::<Result<_, _>>()
        .map_err(|p| format!("invalid value for --samples: {p:?}"))?;
    if sizes.is_empty() || sizes.contains(&0) {
        return Err(format!("invalid value for --samples: {v}"));
    }
    Ok(sizes)
}

/// Parses a `--journal-format` value; anything but `jsonl`/`bin` is a
/// usage error (exit 2), matching the other flags' conventions.
fn journal_format_value(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<JournalFormat, String> {
    let v = raw_value(it, flag)?;
    JournalFormat::parse(&v)
        .ok_or_else(|| format!("invalid value for {flag}: {v} (expected jsonl or bin)"))
}

fn raw_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<String, String> {
    match it.next() {
        Some(v) if !v.starts_with("--") => Ok(v.clone()),
        _ => Err(format!("{flag} requires a value")),
    }
}

fn value<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let v = raw_value(it, flag)?;
    v.parse()
        .map_err(|_| format!("invalid value for {flag}: {v}"))
}

fn params() {
    for (name, cfg) in [
        ("grid", ScenarioConfig::grid_paper(0)),
        ("random", ScenarioConfig::random_paper(0)),
    ] {
        println!("[{name} topology]");
        for (k, v) in cfg.table1_rows() {
            println!("  {k:<30} {v}");
        }
        println!();
    }
}

/// The per-monitor result block, shared verbatim by the live path, the
/// replay path and the `mgd` daemon — the ci.sh gates diff these lines
/// byte-for-byte, so the single producer is [`render_report`].
fn report_diagnosis(attacker_node: usize, sample_size: usize, multi: bool, diag: &Diagnosis) {
    print!("{}", render_report(attacker_node, sample_size, multi, diag));
}

/// Runs the built world and prints the detection report. Generic over the
/// probe so the `--record` path (recorder installed) shares it with the
/// plain one.
fn run_and_report<P: NetObserver>(
    world: &mut World<Assembly<P>>,
    o: &DetectOpts,
    attacker: AttackerHandle,
    attacker_node: usize,
    watches: &[(usize, MonitorHandle)],
) {
    if o.pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: o.pm });
    }

    let t0 = std::time::Instant::now();
    {
        let handle = world.metrics().clone();
        let _span = Span::enter(&handle, "detect.run");
        world.run_until(SimTime::from_secs(o.secs));
    }
    let wall = t0.elapsed();

    println!(
        "run      : {}s virtual in {wall:.2?} ({} events)",
        o.secs,
        world.events_fired()
    );
    println!(
        "load     : measured rho = {:.2}",
        world.monitors().diagnosis(watches[0].1).measured_rho
    );
    for &(n, watch) in watches {
        let diag = world.monitors().diagnosis(watch);
        report_diagnosis(attacker_node, n, watches.len() > 1, &diag);
    }

    emit_trace_metrics(world, o);
}

/// Prints the `--trace` file and `--metrics` lines a finished world owes —
/// shared by the per-monitor and quorum live paths.
fn emit_trace_metrics<P: NetObserver>(world: &World<Assembly<P>>, o: &DetectOpts) {
    if let Some(path) = &o.trace {
        let tracer = world.tracer();
        match std::fs::write(path, tracer.to_jsonl()) {
            Ok(()) => println!(
                "trace    : {} events written to {path} ({} dropped by ring)",
                tracer.len(),
                tracer.dropped()
            ),
            Err(e) => {
                eprintln!("error: cannot write trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if o.metrics {
        println!("metrics  : {}", world.metrics().snapshot().to_json().render());
        for (name, ns) in world.metrics().spans() {
            println!("span     : {name} = {:.2?}", std::time::Duration::from_nanos(ns));
        }
    }
}

/// `detect --quorum K` (live): simulate once with an observation recorder
/// over up to `2K+1` in-range vantages, then replay the recorded journal
/// into a [`QuorumSession`] — accusation gossip, k-of-n conviction — and
/// print its collaborative verdict. The journal (saved by `--record`)
/// replays into the identical verdict via `detect --replay --quorum K`.
fn quorum_detect(o: &DetectOpts, k: usize) {
    let mut cfg = if o.random {
        ScenarioConfig::random_paper(o.seed)
    } else {
        ScenarioConfig::grid_paper(o.seed)
    };
    cfg.sim_secs = o.secs;
    cfg.rate_pps = o.rate;
    cfg.shards = o.shards;

    let scenario = Scenario::new(cfg);
    let (attacker_node, primary) = scenario.tagged_pair();
    // Member set: the closest non-tagged nodes that can still *decode* the
    // tagged node's frames (transmission range, not just carrier sensing),
    // capped at 2k+1 so an honest majority can out-vote k-1 liars.
    let pos = scenario.positions();
    let mut members: Vec<(usize, f64)> = (0..pos.len())
        .filter(|&v| v != attacker_node)
        .map(|v| (v, pos[attacker_node].distance(pos[v])))
        .filter(|&(_, d)| d <= cfg.tx_range)
        .collect();
    members.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance").then(a.0.cmp(&b.0)));
    members.truncate(2 * k + 1);
    if members.len() < k {
        eprintln!(
            "error: --quorum {k} needs {k} in-range monitors, topology offers {}",
            members.len()
        );
        std::process::exit(1);
    }

    println!(
        "scenario : {} nodes, static, background {} pkt/s x {} sources",
        pos.len(),
        o.rate,
        cfg.source_count,
    );
    println!(
        "attacker : node {attacker_node} (PM = {}%), quorum: {} monitor(s), k = {k}",
        o.pm,
        members.len()
    );

    let mc = if o.random {
        MonitorConfig::random_paper(attacker_node, members[0].0, members[0].1)
    } else {
        MonitorConfig::grid_paper(attacker_node, members[0].0, members[0].1)
    };
    let mc = MonitorConfig {
        blatant_check: !o.no_blatant,
        ..mc.with_sample_size(o.samples[0])
    };

    let mut builder = ScenarioBuilder::new(scenario);
    let attacker = builder.attacker(attacker_node);
    for &(v, _) in &members {
        builder.reserve(v);
    }
    builder.source(SourceCfg::saturated(attacker_node, primary));
    if !o.faults.is_noop() {
        println!("faults   : {:?}", o.faults);
    }
    if o.trace.is_some() {
        builder.trace(TraceConfig::verbose());
    }
    if o.metrics {
        builder.metrics();
    }

    // The header carries each member's measured distance (`dist.<v>`), so a
    // --replay of this journal rebuilds the exact same member geometry.
    let kind = if o.random { "random" } else { "grid" };
    let mut params = vec![
        ("kind".into(), kind.into()),
        ("pm".into(), o.pm.to_string()),
        ("rate".into(), o.rate.to_string()),
        ("secs".into(), o.secs.to_string()),
    ];
    for &(v, d) in &members {
        params.push((format!("dist.{v}"), d.to_string()));
    }
    let meta = ObsMeta {
        tagged: attacker_node,
        vantages: members.iter().map(|&(v, _)| v).collect(),
        pair_distance: members[0].1,
        seed: o.seed,
        params,
    };
    let mut world = builder.probe(ObsRecorder::new(meta)).build();
    if o.pm > 0 {
        world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: o.pm });
    }

    let t0 = std::time::Instant::now();
    {
        let handle = world.metrics().clone();
        let _span = Span::enter(&handle, "detect.run");
        world.run_until(SimTime::from_secs(o.secs));
    }
    println!(
        "run      : {}s virtual in {:.2?} ({} events)",
        o.secs,
        t0.elapsed(),
        world.events_fired()
    );

    let journal = world.probe().journal().clone();
    emit_trace_metrics(&world, o);
    if let Some(path) = &o.record {
        match journal.save(std::path::Path::new(path), o.journal_format) {
            Ok(()) => println!(
                "record   : {} observations written to {path} ({} format)",
                journal.len(),
                o.journal_format
            ),
            Err(e) => {
                eprintln!("error: cannot write journal to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut q = QuorumSpec::new(attacker_node, &members, mc, k)
        .with_faults(o.faults.clone())
        .with_seed(o.seed)
        .build();
    journal.replay(&mut q);
    q.finish();
    print!("{}", q.report());
}

/// `detect --replay`: no simulation — open the journal (format
/// auto-detected by magic), build one fresh monitor (pool) per requested
/// sample size, and stream the recorded observations through each without
/// ever materializing the journal in memory.
fn replay_detect(o: &DetectOpts, path: &str) {
    let reader = match JournalReader::open(std::path::Path::new(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot load journal from {path}: {e}");
            std::process::exit(1);
        }
    };
    if o.journal_format_explicit && reader.format() != o.journal_format {
        eprintln!(
            "error: journal {path} is {}, but --journal-format {} was requested",
            reader.format(),
            o.journal_format
        );
        std::process::exit(1);
    }
    let meta = reader.meta().clone();
    if meta.vantages.is_empty() {
        eprintln!("error: journal {path} declares no vantages");
        std::process::exit(1);
    }
    let attacker_node = meta.tagged;
    let primary = meta.vantages[0];
    let pm: u8 = meta.param_parsed("pm").unwrap_or(0);

    // The same derivation the mgd daemon and `journal info --deltas` use:
    // one journal, one monitor template, whoever the consumer is.
    let mut mc = template_from_meta(&meta);
    if o.no_blatant {
        mc.blatant_check = false;
    }

    println!(
        "replay   : {path} ({} format, {} events, {} vantage(s), world seed {})",
        reader.format(),
        reader.len(),
        meta.vantages.len(),
        meta.seed
    );
    if let Some(k) = o.quorum {
        // Collaborative replay: materialize the journal (the member set
        // needs its geometry before the first event), then stream it into
        // one gossiping QuorumSession.
        let mut journal = ObsJournal::new(meta.clone());
        for ev in reader.events() {
            match ev {
                Ok(obs) => journal.push(obs),
                Err(e) => {
                    eprintln!("error: journal {path} is damaged: {e}");
                    std::process::exit(1);
                }
            }
        }
        let members = members_from_journal(&journal);
        if members.len() < k {
            eprintln!(
                "error: --quorum {k} needs {k} members, journal {path} records {}",
                members.len()
            );
            std::process::exit(1);
        }
        println!(
            "attacker : node {attacker_node} (PM = {pm}%), quorum: {} monitor(s), k = {k}",
            members.len()
        );
        if !o.faults.is_noop() {
            println!("faults   : {:?}", o.faults);
        }
        let t0 = std::time::Instant::now();
        let mut q = QuorumSpec::new(attacker_node, &members, mc.with_sample_size(o.samples[0]), k)
            .with_faults(o.faults.clone())
            .with_seed(meta.seed)
            .build();
        journal.replay(&mut q);
        q.finish();
        println!(
            "run      : {} events replayed into {} collaborating monitor(s) in {:.2?}",
            journal.len(),
            members.len(),
            t0.elapsed()
        );
        print!("{}", q.report());
        return;
    }

    println!("attacker : node {attacker_node} (PM = {pm}%), monitor: node {primary}");
    if !o.faults.is_noop() {
        println!("faults   : {:?}", o.faults);
    }

    let t0 = std::time::Instant::now();
    let pools: Vec<(usize, MonitorPool)> = o
        .samples
        .iter()
        .map(|&n| {
            let pool = replay_reader_faulted(&reader, mc.with_sample_size(n), &o.faults)
                .unwrap_or_else(|e| {
                    eprintln!("error: journal {path} is damaged: {e}");
                    std::process::exit(1);
                });
            (n, pool)
        })
        .collect();
    println!(
        "run      : {} events replayed into {} monitor(s) in {:.2?}",
        reader.len(),
        pools.len(),
        t0.elapsed()
    );
    println!(
        "load     : measured rho = {:.2}",
        pools[0].1.diagnosis().measured_rho
    );
    for (n, pool) in &pools {
        report_diagnosis(attacker_node, *n, pools.len() > 1, &pool.diagnosis());
    }
}

/// `manet-guard journal …`: inspect or re-encode recorded Obs journals.
/// Usage errors return `Err` (exit 2 with usage); damaged journals and I/O
/// failures exit 1 with a message — never a panic.
fn journal_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("info") => {
            let mut deltas = false;
            let mut file: Option<&String> = None;
            for a in &args[1..] {
                match a.as_str() {
                    "--deltas" => deltas = true,
                    _ if file.is_none() && !a.starts_with("--") => file = Some(a),
                    other => return Err(format!("unrecognized argument: {other}")),
                }
            }
            let Some(path) = file else {
                return Err("journal info takes exactly one FILE".into());
            };
            journal_info(path, deltas);
            Ok(())
        }
        Some("send") => {
            let mut to: Option<String> = None;
            let mut chunk = 4096usize;
            let mut file: Option<&String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--to" => to = Some(raw_value(&mut it, a)?),
                    "--chunk" => {
                        chunk = value(&mut it, a)?;
                        if chunk == 0 {
                            return Err("invalid value for --chunk: 0".into());
                        }
                    }
                    _ if file.is_none() && !a.starts_with("--") => file = Some(a),
                    other => return Err(format!("unrecognized argument: {other}")),
                }
            }
            let Some(path) = file else {
                return Err("journal send takes a FILE".into());
            };
            let Some(addr) = to else {
                return Err("journal send requires --to HOST:PORT".into());
            };
            journal_send(path, &addr, chunk);
            Ok(())
        }
        Some("transcode") => {
            if args.len() < 3 {
                return Err("journal transcode takes IN and OUT paths".into());
            }
            let mut format = JournalFormat::Binary;
            let mut it = args[3..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--journal-format" => format = journal_format_value(&mut it, a)?,
                    other => return Err(format!("unrecognized argument: {other}")),
                }
            }
            journal_transcode(&args[1], &args[2], format);
            Ok(())
        }
        Some(other) => Err(format!("unrecognized journal subcommand: {other}")),
        None => Err("journal requires a subcommand (info | transcode | send)".into()),
    }
}

fn open_journal_or_exit(path: &str) -> JournalReader {
    JournalReader::open(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: cannot load journal from {path}: {e}");
        std::process::exit(1);
    })
}

fn journal_info(path: &str, deltas: bool) {
    let r = open_journal_or_exit(path);
    let meta = r.meta();
    println!("journal  : {path}");
    println!("format   : {}", r.format());
    println!("size     : {} bytes", r.size_bytes());
    println!("events   : {}", r.len());
    println!("tagged   : node {}", meta.tagged);
    println!(
        "vantages : {} ({})",
        meta.vantages.len(),
        meta.vantages
            .iter()
            .take(8)
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("distance : {}", meta.pair_distance);
    println!("seed     : {}", meta.seed);
    for (k, v) in &meta.params {
        println!("param    : {k} = {v}");
    }
    if deltas {
        journal_deltas(&r, path);
    }
}

/// `journal info --deltas`: stream the journal through an incremental
/// [`DetectorSession`] and print every [`DiagnosisDelta`] as one JSON line
/// — the same lines an `mgd` subscriber would see for this stream.
fn journal_deltas(r: &JournalReader, path: &str) {
    struct Printer {
        session: DetectorSession,
        emitted: u64,
    }
    impl ObsSink for Printer {
        fn ingest(&mut self, obs: &Obs) {
            for d in self.session.ingest(obs) {
                println!("{}", d.to_json().render());
                self.emitted += 1;
            }
        }
    }
    let mut p = Printer {
        session: SessionSpec::from_meta(r.meta()).build(),
        emitted: 0,
    };
    if let Err(e) = r.replay_into(&mut p) {
        eprintln!("error: journal {path} is damaged: {e}");
        std::process::exit(1);
    }
    println!("deltas   : {} emitted", p.emitted);
}

/// `journal send`: stream a journal to a running `mgd` daemon over the
/// mg-serve wire protocol and print the daemon's detection report — which
/// is byte-identical to `detect --replay` of the same file.
fn journal_send(path: &str, addr: &str, chunk: usize) {
    use std::io::Read;
    let r = open_journal_or_exit(path);
    let mut sock = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let sent = match serve::send_journal(&mut sock, &r, chunk) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: cannot send journal {path} to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut response = String::new();
    if let Err(e) = sock.read_to_string(&mut response) {
        eprintln!("error: no report from {addr}: {e}");
        std::process::exit(1);
    }
    println!("sent     : {sent} event(s) from {path} to {addr}");
    print!("{response}");
}

/// Streams `input` into `output` re-encoded as `format` — one event in
/// flight at a time, the journal is never materialized.
fn journal_transcode(input: &str, output: &str, format: JournalFormat) {
    let r = open_journal_or_exit(input);
    let mut w = JournalWriter::new(format, r.meta());
    for ev in r.events() {
        match ev {
            Ok(o) => w.push(&o),
            Err(e) => {
                eprintln!("error: journal {input} is damaged: {e}");
                std::process::exit(1);
            }
        }
    }
    let n = w.len();
    match w.save(std::path::Path::new(output)) {
        Ok(()) => println!("transcode: {n} events {input} -> {output} ({format} format)"),
        Err(e) => {
            eprintln!("error: cannot write journal to {output}: {e}");
            std::process::exit(1);
        }
    }
}

fn detect(o: DetectOpts) {
    if let Some(path) = o.replay.clone() {
        replay_detect(&o, &path);
        return;
    }
    if let Some(k) = o.quorum {
        quorum_detect(&o, k);
        return;
    }
    let random = o.random || o.mobile;
    let mut cfg = if o.mobile {
        ScenarioConfig::mobile_paper(o.seed, SimDuration::ZERO)
    } else if random {
        ScenarioConfig::random_paper(o.seed)
    } else {
        ScenarioConfig::grid_paper(o.seed)
    };
    cfg.sim_secs = o.secs;
    cfg.rate_pps = o.rate;
    cfg.shards = o.shards;

    let scenario = Scenario::new(cfg);
    let (attacker_node, vantage) = scenario.tagged_pair();
    println!(
        "scenario : {} nodes, {}, background {} pkt/s x {} sources",
        scenario.positions().len(),
        if o.mobile { "mobile (RWP 0-20 m/s)" } else { "static" },
        o.rate,
        cfg.source_count,
    );
    println!(
        "attacker : node {attacker_node} (PM = {}%), monitor: node {vantage}",
        o.pm
    );

    let d = scenario.positions()[attacker_node].distance(scenario.positions()[vantage]);
    let mut mc = if random {
        MonitorConfig::random_paper(attacker_node, vantage, d)
    } else {
        MonitorConfig::grid_paper(attacker_node, vantage, d)
    };
    if o.no_blatant {
        mc.blatant_check = false;
    }

    let mut builder = ScenarioBuilder::new(scenario);
    let attacker = builder.attacker(attacker_node);
    if o.mobile {
        // Under mobility, monitor from every candidate neighbor with
        // range-based handoff (the paper's Section 5 scheme).
        mc.eifs_weight = 0.0;
        mc.counts = NodeCounts::SimCalibrated;
    }
    let vantages: Vec<usize> = (0..builder.scenario().positions().len())
        .filter(|&v| v != attacker_node)
        .collect();
    // One world, one monitor per requested sample size: a multi-size
    // `--samples` list shares a single simulation instead of re-running it.
    let watches: Vec<(usize, MonitorHandle)> = o
        .samples
        .iter()
        .map(|&n| {
            let mc = mc.with_sample_size(n);
            let handle = if o.mobile {
                builder.monitor_pool(mc, &vantages)
            } else {
                builder.monitor(mc)
            };
            (n, handle)
        })
        .collect();
    builder.source(SourceCfg::saturated(attacker_node, vantage));
    if !o.faults.is_noop() {
        println!("faults   : {:?}", o.faults);
        builder.fault(o.faults.clone());
    }
    if o.trace.is_some() {
        builder.trace(TraceConfig::verbose());
    }
    if o.metrics {
        builder.metrics();
    }

    if let Some(path) = o.record.clone() {
        // The recorder watches the same vantage set as the monitors; the
        // journal header carries the world facts a --replay needs to
        // rebuild an equivalent monitor template.
        let kind = if o.mobile {
            "mobile"
        } else if random {
            "random"
        } else {
            "grid"
        };
        let meta = ObsMeta {
            tagged: attacker_node,
            vantages: if o.mobile { vantages.clone() } else { vec![vantage] },
            pair_distance: d,
            seed: o.seed,
            params: vec![
                ("kind".into(), kind.into()),
                ("pm".into(), o.pm.to_string()),
                ("rate".into(), o.rate.to_string()),
                ("secs".into(), o.secs.to_string()),
            ],
        };
        let mut world = builder.probe(ObsRecorder::new(meta)).build();
        run_and_report(&mut world, &o, attacker, attacker_node, &watches);
        let journal = world.probe().journal();
        match journal.save(std::path::Path::new(&path), o.journal_format) {
            Ok(()) => println!(
                "record   : {} observations written to {path} ({} format)",
                journal.len(),
                o.journal_format
            ),
            Err(e) => {
                eprintln!("error: cannot write journal to {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let mut world = builder.build();
        run_and_report(&mut world, &o, attacker, attacker_node, &watches);
    }
}
