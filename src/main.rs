//! `manet-guard` — command-line front end.
//!
//! ```text
//! manet-guard demo                      quick demonstration (grid, PM=75)
//! manet-guard detect [OPTIONS]          run one detection scenario
//! manet-guard params                    print the Table 1 parameters
//!
//! detect options:
//!   --pm <0-100>      percentage of misbehavior        [default: 50]
//!   --rate <pps>      background packets/s per source  [default: 2.0]
//!   --secs <s>        simulated seconds                [default: 60]
//!   --seed <n>        run seed                         [default: 1]
//!   --samples <n>     back-off samples per test        [default: 50]
//!   --random          random 112-node topology instead of the grid
//!   --mobile          add random-waypoint mobility (implies --random)
//!   --no-blatant      disable the deterministic timing check
//! ```

use manet_guard::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => detect(&["--pm".into(), "75".into()]),
        Some("detect") => detect(&args[1..]),
        Some("params") => params(),
        _ => {
            eprint!("{}", USAGE);
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
manet-guard: back-off timer violation detection (ICDCS 2006 reproduction)

usage:
  manet-guard demo
  manet-guard detect [--pm N] [--rate PPS] [--secs S] [--seed N]
                     [--samples N] [--random] [--mobile] [--no-blatant]
  manet-guard params
";

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn params() {
    for (name, cfg) in [
        ("grid", ScenarioConfig::grid_paper(0)),
        ("random", ScenarioConfig::random_paper(0)),
    ] {
        println!("[{name} topology]");
        for (k, v) in cfg.table1_rows() {
            println!("  {k:<30} {v}");
        }
        println!();
    }
}

fn detect(args: &[String]) {
    let pm: u8 = opt(args, "--pm", 50);
    let rate: f64 = opt(args, "--rate", 2.0);
    let secs: u64 = opt(args, "--secs", 60);
    let seed: u64 = opt(args, "--seed", 1);
    let samples: usize = opt(args, "--samples", 50);
    let mobile = flag(args, "--mobile");
    let random = flag(args, "--random") || mobile;

    let mut cfg = if mobile {
        ScenarioConfig::mobile_paper(seed, SimDuration::ZERO)
    } else if random {
        ScenarioConfig::random_paper(seed)
    } else {
        ScenarioConfig::grid_paper(seed)
    };
    cfg.sim_secs = secs;
    cfg.rate_pps = rate;

    let scenario = Scenario::new(cfg);
    let (attacker, vantage) = scenario.tagged_pair();
    println!(
        "scenario : {} nodes, {}, background {rate} pkt/s x {} sources",
        scenario.positions().len(),
        if mobile { "mobile (RWP 0-20 m/s)" } else { "static" },
        cfg.source_count,
    );
    println!("attacker : node {attacker} (PM = {pm}%), monitor: node {vantage}");

    let d = scenario.positions()[attacker].distance(scenario.positions()[vantage]);
    let mut mc = if random {
        MonitorConfig::random_paper(attacker, vantage, d)
    } else {
        MonitorConfig::grid_paper(attacker, vantage, d)
    };
    mc.sample_size = samples;
    if flag(args, "--no-blatant") {
        mc.blatant_check = false;
    }

    let mut world = scenario.build(&[attacker, vantage], Monitor::new(mc));
    if pm > 0 {
        world.set_policy(attacker, BackoffPolicy::Scaled { pm });
    }
    world.add_source(SourceCfg::saturated(attacker, vantage));

    let t0 = std::time::Instant::now();
    world.run_until(SimTime::from_secs(secs));
    let wall = t0.elapsed();

    let diag = world.observer().diagnosis();
    println!(
        "run      : {secs}s virtual in {wall:.2?} ({} events)",
        world.events_fired()
    );
    println!("load     : measured rho = {:.2}", diag.measured_rho);
    println!(
        "samples  : {} collected, {} discarded",
        diag.samples_collected, diag.samples_discarded
    );
    println!(
        "tests    : {} run, {} rejected H0 (last p = {})",
        diag.tests_run,
        diag.rejections,
        diag.last_p
            .map(|p| format!("{p:.4}"))
            .unwrap_or_else(|| "-".into())
    );
    println!("checks   : {} deterministic violations", diag.violations);
    println!(
        "verdict  : node {attacker} is {}",
        if diag.is_flagged() {
            "MISBEHAVING"
        } else {
            "apparently well-behaved"
        }
    );
}
