//! # manet-guard
//!
//! A complete, from-scratch Rust implementation of
//!
//! > *Detecting MAC Layer Back-off Timer Violations in Mobile Ad Hoc
//! > Networks* — Lolla, Law, Krishnamurthy, Ravishankar, Manjunath
//! > (IEEE ICDCS 2006)
//!
//! including every substrate the paper runs on: a deterministic
//! discrete-event simulator, a wireless PHY with distinct transmission
//! (250 m) and carrier-sensing (550 m) ranges, a full IEEE 802.11 DCF MAC
//! with the paper's verifiable-back-off extensions, traffic generators,
//! random-waypoint mobility, AODV-lite routing — and, on top, the paper's
//! contribution: a combined deterministic + statistical detector of back-off
//! timer violations.
//!
//! ## Layout
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `mg-sim` | virtual clock, event queue, reproducible RNG streams |
//! | [`geom`] | `mg-geom` | circle/lens areas, the A1–A5 region model, placement |
//! | [`stats`] | `mg-stats` | Wilcoxon rank-sum, Welch t, ARMA filter, summaries |
//! | [`crypto`] | `mg-crypto` | MD5 (RFC 1321), the verifiable back-off PRS |
//! | [`phy`] | `mg-phy` | propagation models, radio thresholds, shared medium |
//! | [`mac`] | `mg-dcf` | the 802.11 DCF MAC + misbehavior policies |
//! | [`net`] | `mg-net` | the simulation world, traffic, mobility, AODV-lite |
//! | [`obs`] | `mg-obs` | the monitor's typed observation alphabet + record/replay journals |
//! | [`trace`] | `mg-trace` | structured event journal, per-node metrics, spans |
//! | [`fault`] | `mg-fault` | deterministic fault injection for chaos testing |
//! | [`detect`] | `mg-detect` | **the detection framework** (the paper's contribution) |
//! | [`quorum`] | `mg-quorum` | collaborative detection: accusation gossip, k-of-n conviction |
//! | [`serve`] | `mg-serve` | the `mgd` daemon: multi-stream demux, bounded MPMC, wire protocol |
//!
//! ## Quickstart
//!
//! Catch a node that counts down only 25 % of its dictated back-off:
//!
//! ```
//! use manet_guard::prelude::*;
//!
//! // The paper's 7×8 grid, light Poisson background traffic.
//! let scenario = Scenario::new(ScenarioConfig {
//!     sim_secs: 20,
//!     rate_pps: 2.0,
//!     ..ScenarioConfig::grid_paper(7)
//! });
//! let (s, r) = scenario.tagged_pair();
//!
//! // Declare the roles: an attacker and the paper's monitor at its neighbor.
//! let mut builder = ScenarioBuilder::new(scenario);
//! let attacker = builder.attacker(s);
//! let watch = builder.monitor(MonitorConfig::grid_paper(s, r, 240.0));
//! builder.source(SourceCfg::saturated(s, r));
//!
//! let mut world = builder.build();
//! world.set_policy(attacker.id(), BackoffPolicy::Scaled { pm: 75 });
//! world.run_until(SimTime::from_secs(20));
//!
//! let diagnosis = world.monitors().diagnosis(watch);
//! assert!(diagnosis.is_flagged(), "{diagnosis:?}");
//! ```
//!
//! ## Observability
//!
//! Every layer emits structured events into an optional ring-buffer journal
//! and counts into per-node metrics — both zero-cost when disabled. Ask the
//! builder for them:
//!
//! ```
//! use manet_guard::prelude::*;
//!
//! let scenario = Scenario::new(ScenarioConfig {
//!     sim_secs: 2, rate_pps: 2.0, ..ScenarioConfig::grid_paper(7)
//! });
//! let (s, r) = scenario.tagged_pair();
//! let mut builder = ScenarioBuilder::new(scenario);
//! builder.monitor(MonitorConfig::grid_paper(s, r, 240.0));
//! builder.source(SourceCfg::saturated(s, r));
//! builder.trace(TraceConfig::default()); // journal MAC/net/monitor events
//! builder.metrics();                     // per-node counters + histograms
//!
//! let mut world = builder.build();
//! world.run_until(SimTime::from_secs(2));
//!
//! let jsonl = world.tracer().to_jsonl();          // one JSON object per line
//! let snapshot = world.metrics().snapshot();      // counters + histograms
//! assert!(!jsonl.is_empty());
//! assert!(snapshot.total(Counter::TxFrames) > 0);
//! ```

#![warn(missing_docs)]

pub use mg_crypto as crypto;
pub use mg_dcf as mac;
pub use mg_detect as detect;
pub use mg_fault as fault;
pub use mg_geom as geom;
pub use mg_net as net;
pub use mg_obs as obs;
pub use mg_phy as phy;
pub use mg_quorum as quorum;
pub use mg_serve as serve;
pub use mg_sim as sim;
pub use mg_stats as stats;
pub use mg_trace as trace;

/// The types almost every user needs, in one import.
pub mod prelude {
    pub use mg_dcf::{BackoffPolicy, Dest, Frame, FrameKind, MacSdu, MacTiming};
    pub use mg_detect::{
        render_report, replay_pool, replay_pool_faulted, replay_reader, replay_reader_faulted,
        template_from_meta, AnalyticModel, Assembly, AttackerHandle, DetectorSession, Diagnosis,
        DiagnosisDelta, FaultPlan, Judge, JournalError, JournalFormat, JournalReader,
        JournalWriter, Monitor, MonitorConfig, MonitorHandle, MonitorPool, Monitors, NodeCounts,
        Obs, ObsFaults, ObsJournal, ObsMeta, ObsRecorder, ObsSink, ScenarioBuilder, SessionSpec,
        Violation, WorldMonitors, WorldProbe,
    };
    pub use mg_geom::{PreclusionRule, RegionModel, Vec2};
    pub use mg_net::{
        MobilityCfg, NetObserver, Scenario, ScenarioConfig, Shards, ShardStats, SourceCfg,
        TopologyCfg, TrafficKind, TrafficModel, World,
    };
    pub use mg_phy::{Medium, MediumIndex, PropagationModel, RadioParams};
    pub use mg_quorum::{
        members_from_journal, Accusation, EvidenceKind, GossipChannel, GossipConfig,
        GossipCounts, MonitorRole, QuorumFaults, QuorumSession, QuorumSpec,
    };
    pub use mg_serve::{Daemon, Policy, ServeConfig, ServeStats, StreamReport};
    pub use mg_sim::{SimDuration, SimTime};
    pub use mg_stats::wilcoxon::{rank_sum_test, Alternative};
    pub use mg_trace::{
        Counter, Level, Metrics, MetricsSnapshot, Span, Subsystem, TraceConfig, Tracer,
    };
}
